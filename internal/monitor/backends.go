package monitor

import (
	"fmt"
	"sort"
	"sync"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/revctl"
)

// DefaultSeriesRetention caps how many samples each series keeps
// (mirroring telemetry.DefaultTraceRing): monitoring runs forever, so an
// unbounded append would grow without limit at one sample per poll per
// series.
const DefaultSeriesRetention = 1024

// TimeseriesBackend stores numeric samples in memory, the stand-in for the
// metric storage active monitoring feeds. Each series is a fixed-size ring:
// once a series reaches the retention cap, the oldest sample is overwritten.
type TimeseriesBackend struct {
	mu        sync.Mutex
	retention int
	series    map[string]*sampleRing // key: device/metric
}

// Sample is one datapoint.
type Sample struct {
	AtUnix int64   `json:"at_unix"`
	Value  float64 `json:"value"`
}

// sampleRing is a circular buffer of samples; buf never exceeds its
// retention capacity, so a series costs O(retention) memory regardless of
// how many polls have fed it.
type sampleRing struct {
	buf   []Sample
	start int // index of the oldest sample
	n     int
}

func (r *sampleRing) push(s Sample) {
	if r.n < cap(r.buf) {
		r.buf = r.buf[:r.n+1]
		r.buf[(r.start+r.n)%cap(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % cap(r.buf)
}

func (r *sampleRing) snapshot() []Sample {
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%cap(r.buf)]
	}
	return out
}

func (r *sampleRing) last(k int) []Sample {
	if k > r.n {
		k = r.n
	}
	out := make([]Sample, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.start+r.n-k+i)%cap(r.buf)]
	}
	return out
}

// NewTimeseriesBackend returns an empty timeseries store with the default
// per-series retention.
func NewTimeseriesBackend() *TimeseriesBackend {
	return &TimeseriesBackend{
		retention: DefaultSeriesRetention,
		series:    make(map[string]*sampleRing),
	}
}

// SetRetention changes the per-series sample cap for series created after
// the call; n <= 0 restores the default. Existing series keep their rings.
func (b *TimeseriesBackend) SetRetention(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n <= 0 {
		n = DefaultSeriesRetention
	}
	b.retention = n
}

// Name implements Backend.
func (b *TimeseriesBackend) Name() string { return "timeseries" }

func (b *TimeseriesBackend) pushLocked(key string, s Sample) {
	r, ok := b.series[key]
	if !ok {
		r = &sampleRing{buf: make([]Sample, 0, b.retention)}
		b.series[key] = r
	}
	r.push(s)
}

// Store implements Backend: counters fan out into per-metric series;
// interface collections store per-interface octet counters, both
// directions.
func (b *TimeseriesBackend) Store(col Collection) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	at := col.At.Unix()
	for metric, v := range col.Counters {
		b.pushLocked(col.Device+"/"+metric, Sample{AtUnix: at, Value: v})
	}
	for _, ifc := range col.Interfaces {
		prefix := col.Device + "/" + ifc.Name
		b.pushLocked(prefix+"/in_octets", Sample{AtUnix: at, Value: float64(ifc.InOctets)})
		b.pushLocked(prefix+"/out_octets", Sample{AtUnix: at, Value: float64(ifc.OutOctets)})
	}
	return nil
}

// Series returns the samples of one device/metric key, oldest first.
func (b *TimeseriesBackend) Series(key string) []Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.series[key]
	if !ok {
		return nil
	}
	return r.snapshot()
}

// Last returns up to k most recent samples of a series, oldest first.
func (b *TimeseriesBackend) Last(key string, k int) []Sample {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.series[key]
	if !ok {
		return nil
	}
	return r.last(k)
}

// Keys lists stored series keys.
func (b *TimeseriesBackend) Keys() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.series))
	for k := range b.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DerivedBackend populates FBNet Derived models from collections
// (§4.1.2: "data in Derived models is populated based on real-time
// collection from network devices").
type DerivedBackend struct {
	store *fbnet.Store
}

// NewDerivedBackend returns a backend writing to the given FBNet store.
func NewDerivedBackend(store *fbnet.Store) *DerivedBackend {
	return &DerivedBackend{store: store}
}

// Name implements Backend.
func (b *DerivedBackend) Name() string { return "fbnet-derived" }

// Store implements Backend, upserting the matching Derived objects.
func (b *DerivedBackend) Store(col Collection) error {
	_, err := b.store.Mutate(func(m *fbnet.Mutation) error {
		switch col.Data {
		case DataVersion:
			return upsert(m, "DerivedDevice", fbnet.Eq("name", col.Device), map[string]any{
				"name": col.Device, "vendor": col.Version.Vendor,
				"os_version": col.Version.OSVersion,
				"uptime_s":   col.Version.UptimeS, "last_seen_unix": col.At.Unix(),
			})
		case DataInterfaces:
			for _, ifc := range col.Interfaces {
				err := upsert(m, "DerivedInterface",
					fbnet.And(fbnet.Eq("device_name", col.Device), fbnet.Eq("name", ifc.Name)),
					map[string]any{
						"device_name": col.Device, "name": ifc.Name,
						"oper_status": ifc.OperStatus, "speed_mbps": ifc.SpeedMbps,
						"last_change_unix": col.At.Unix(),
					})
				if err != nil {
					return err
				}
			}
		case DataLLDP:
			// Replace this device's adjacency rows wholesale.
			old, err := m.Find("DerivedLldpNeighbor", fbnet.Eq("device_name", col.Device))
			if err != nil {
				return err
			}
			for _, o := range old {
				if err := m.Delete("DerivedLldpNeighbor", o.ID); err != nil {
					return err
				}
			}
			for _, n := range col.LLDP {
				if _, err := m.Create("DerivedLldpNeighbor", map[string]any{
					"device_name": col.Device, "interface_name": n.LocalInterface,
					"neighbor_device": n.NeighborDevice, "neighbor_interface": n.NeighborInterface,
				}); err != nil {
					return err
				}
			}
		case DataBGP:
			for _, p := range col.BGP {
				err := upsert(m, "DerivedBgpSession",
					fbnet.And(fbnet.Eq("device_name", col.Device), fbnet.Eq("peer_addr", p.PeerAddr)),
					map[string]any{
						"device_name": col.Device, "peer_addr": p.PeerAddr,
						"family": p.Family, "state": p.State,
					})
				if err != nil {
					return err
				}
			}
		}
		return nil
	})
	return err
}

// upsert creates or updates one object matching q.
func upsert(m *fbnet.Mutation, model string, q fbnet.Query, fields map[string]any) error {
	existing, err := m.Find(model, q)
	if err != nil {
		return err
	}
	switch len(existing) {
	case 0:
		_, err := m.Create(model, fields)
		return err
	case 1:
		return m.Update(model, existing[0].ID, fields)
	default:
		return fmt.Errorf("monitor: %d %s objects match upsert key", len(existing), model)
	}
}

// DeriveCircuits rebuilds DerivedCircuit objects from LLDP adjacency: "a
// circuit object is created if the LLDP data from two devices shows that
// the physical interfaces connected to both ends are neighbors to each
// other" (§4.1.2). Only adjacencies confirmed from both sides produce a
// circuit. Returns the number of derived circuits.
func DeriveCircuits(store *fbnet.Store) (int, error) {
	neighbors, err := store.Find("DerivedLldpNeighbor", nil)
	if err != nil {
		return 0, err
	}
	type end struct{ dev, ifc string }
	claims := make(map[[2]end]bool, len(neighbors))
	for _, n := range neighbors {
		a := end{dev: n.String("device_name"), ifc: n.String("interface_name")}
		z := end{dev: n.String("neighbor_device"), ifc: n.String("neighbor_interface")}
		claims[[2]end{a, z}] = true
	}
	var confirmed [][2]end
	for pair := range claims {
		rev := [2]end{pair[1], pair[0]}
		if !claims[rev] {
			continue
		}
		// Keep one canonical orientation per circuit.
		if pair[0].dev > pair[1].dev || (pair[0].dev == pair[1].dev && pair[0].ifc > pair[1].ifc) {
			continue
		}
		confirmed = append(confirmed, pair)
	}
	sort.Slice(confirmed, func(i, j int) bool {
		if confirmed[i][0].dev != confirmed[j][0].dev {
			return confirmed[i][0].dev < confirmed[j][0].dev
		}
		return confirmed[i][0].ifc < confirmed[j][0].ifc
	})
	_, err = store.Mutate(func(m *fbnet.Mutation) error {
		old, err := m.Find("DerivedCircuit", nil)
		if err != nil {
			return err
		}
		for _, o := range old {
			if err := m.Delete("DerivedCircuit", o.ID); err != nil {
				return err
			}
		}
		for _, pair := range confirmed {
			if _, err := m.Create("DerivedCircuit", map[string]any{
				"a_device": pair[0].dev, "a_interface": pair[0].ifc,
				"z_device": pair[1].dev, "z_interface": pair[1].ifc,
				"source": "lldp",
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return len(confirmed), nil
}

// RecordEvents subscribes an FBNet store to a classifier: every alerted
// (non-ignored) syslog message becomes an OperationalEvent object in the
// Derived group, giving audits and engineers a queryable event history
// ("operational events" are one of the model domains, §4.1.1).
func RecordEvents(cls *Classifier, store *fbnet.Store) {
	cls.OnAlert(func(a Alert) {
		// Event recording is best-effort: a failed write must not block
		// the alerting path.
		_, _ = store.Mutate(func(m *fbnet.Mutation) error {
			_, err := m.Create("OperationalEvent", map[string]any{
				"device_name": a.Message.Host,
				"kind":        a.Rule,
				"detail":      a.Message.Text,
				"urgency":     a.Urgency.String(),
				"at_unix":     a.Message.Time.Unix(),
			})
			return err
		})
	})
}

// ConfigBackend archives every collected running config in the revision-
// controlled backup repository (§5.4.3: "each collected running config is
// also backed up in a revision control system").
type ConfigBackend struct {
	repo *revctl.Repo
}

// NewConfigBackend returns a backend writing under backups/ in repo.
func NewConfigBackend(repo *revctl.Repo) *ConfigBackend {
	return &ConfigBackend{repo: repo}
}

// Name implements Backend.
func (b *ConfigBackend) Name() string { return "config-backup" }

// BackupPath is the repository path of a device's config backups.
func BackupPath(device string) string { return "backups/" + device }

// Store implements Backend.
func (b *ConfigBackend) Store(col Collection) error {
	if col.Data != DataConfig {
		return nil
	}
	_, err := b.repo.Commit(BackupPath(col.Device), col.Config, "monitor", "periodic running-config backup")
	return err
}
