package monitor

import (
	"sort"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
)

// DeriveJobs walks FBNet Desired state and emits the collection job set
// plus the alarm rule set it implies — monitoring config is generated
// from intent exactly like device config (§5.4: "collection configs are
// derived from FBNet"), so re-running the derivation after a design
// change regenerates what to collect and what to alarm on.
//
// Per device: a counters job (1m), an interfaces job (2m), and — only if
// the device terminates BGP sessions — a BGP state job (5m). The engine
// type follows the device's vendor: vendor2 speaks structured protocols
// (Thrift/RPC-XML), vendor1 is polled over SNMP/CLI (§5.4.2, Table 2).
//
// Per design object, an alarm rule: device-unreachable (absence of the
// cpu_util series) per device, bgp-session-down per BGP session with a
// remote address, interface-flatline (series absence) and flatline-octets
// (counter frozen) per physical interface.
func DeriveJobs(store *fbnet.Store) ([]JobSpec, []AlarmRule, error) {
	devices, err := store.Find("Device", nil)
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(devices, func(i, j int) bool {
		return devices[i].String("name") < devices[j].String("name")
	})

	// device id -> name, and vendor syntax per device.
	devName := make(map[int64]string, len(devices))
	for _, d := range devices {
		devName[d.ID] = d.String("name")
	}
	syntax, err := vendorSyntax(store, devices)
	if err != nil {
		return nil, nil, err
	}

	// Which devices terminate BGP sessions, and the session endpoints.
	type session struct{ dev, peer string }
	var sessions []session
	hasBGP := make(map[string]bool)
	for _, model := range []string{"BgpV6Session", "BgpV4Session"} {
		rows, err := store.Find(model, nil)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range rows {
			dev := devName[s.Ref("local_device")]
			if dev == "" {
				continue
			}
			hasBGP[dev] = true
			if peer := s.String("remote_addr"); peer != "" {
				sessions = append(sessions, session{dev: dev, peer: peer})
			}
		}
	}
	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].dev != sessions[j].dev {
			return sessions[i].dev < sessions[j].dev
		}
		return sessions[i].peer < sessions[j].peer
	})

	// Interfaces per device via linecard parentage.
	cards, err := store.Find("Linecard", nil)
	if err != nil {
		return nil, nil, err
	}
	cardDev := make(map[int64]string, len(cards))
	for _, c := range cards {
		cardDev[c.ID] = devName[c.Ref("device")]
	}
	ifaces, err := store.Find("PhysicalInterface", nil)
	if err != nil {
		return nil, nil, err
	}
	type port struct{ dev, ifc string }
	ports := make([]port, 0, len(ifaces))
	for _, ifc := range ifaces {
		if dev := cardDev[ifc.Ref("linecard")]; dev != "" {
			ports = append(ports, port{dev: dev, ifc: ifc.String("name")})
		}
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].dev != ports[j].dev {
			return ports[i].dev < ports[j].dev
		}
		return ports[i].ifc < ports[j].ifc
	})

	var jobs []JobSpec
	var rules []AlarmRule
	for _, d := range devices {
		name := d.String("name")
		v2 := syntax[name] == "vendor2"
		countersEngine, ifaceEngine, bgpEngine := EngineSNMP, EngineSNMP, EngineCLI
		if v2 {
			countersEngine, ifaceEngine, bgpEngine = EngineThrift, EngineRPCXML, EngineThrift
		}
		jobs = append(jobs,
			JobSpec{Name: "derived-counters-" + name, Period: 1 * time.Minute,
				Engine: countersEngine, Data: DataCounters,
				Devices: []string{name}, Backends: []string{"timeseries"}},
			JobSpec{Name: "derived-interfaces-" + name, Period: 2 * time.Minute,
				Engine: ifaceEngine, Data: DataInterfaces,
				Devices: []string{name}, Backends: []string{"timeseries", "fbnet-derived"}},
		)
		if hasBGP[name] {
			jobs = append(jobs, JobSpec{Name: "derived-bgp-" + name, Period: 5 * time.Minute,
				Engine: bgpEngine, Data: DataBGP,
				Devices: []string{name}, Backends: []string{"fbnet-derived"}})
		}
		rules = append(rules, AlarmRule{
			Name: "device-unreachable", Kind: KindAbsence, Device: name,
			Key: "cpu_util", Window: 5 * time.Minute, Urgency: Critical,
		})
	}
	for _, s := range sessions {
		rules = append(rules, AlarmRule{
			Name: "bgp-session-down", Kind: KindBGPState,
			Device: s.dev, Key: s.peer, Urgency: Major,
		})
	}
	for _, p := range ports {
		rules = append(rules,
			AlarmRule{Name: "interface-flatline", Kind: KindAbsence, Device: p.dev,
				Key: p.ifc + "/in_octets", Window: 10 * time.Minute, Urgency: Warning},
			AlarmRule{Name: "flatline-octets", Kind: KindFlatline, Device: p.dev,
				Key: p.ifc + "/out_octets", Urgency: Minor},
		)
	}
	return jobs, rules, nil
}

// vendorSyntax resolves each device's Vendor syntax string through its
// hardware profile; devices with no resolvable profile default to the
// vendor1 personality, matching the fleet materializer.
func vendorSyntax(store *fbnet.Store, devices []fbnet.Object) (map[string]string, error) {
	out := make(map[string]string, len(devices))
	for _, d := range devices {
		out[d.String("name")] = "vendor1"
		hw, err := store.GetByID("HardwareProfile", d.Ref("hw_profile"))
		if err != nil {
			continue
		}
		vendor, err := store.GetByID("Vendor", hw.Ref("vendor"))
		if err != nil {
			continue
		}
		out[d.String("name")] = vendor.String("syntax")
	}
	return out, nil
}
