package monitor

import (
	"testing"

	"github.com/robotron-net/robotron/internal/netsim"
)

// Rule ordering semantics, pinned: when several rules match one line, the
// FIRST rule in insertion order wins — not the most severe. Engineers
// order the rule file, so a deliberately-early suppression or override
// rule shadows everything after it.
func TestClassifierOrderBeatsSeverity(t *testing.T) {
	c := NewClassifier()
	// The earlier rule is LESS severe; first-match-wins means it still
	// takes the line over the later Critical rule.
	c.MustAddRule(Rule{Name: "known-noise", Pattern: `TCAM_ERROR: unit 7`, Urgency: Notice})
	c.MustAddRule(Rule{Name: "tcam-critical", Pattern: `TCAM_ERROR`, Urgency: Critical})

	rule, u := c.Process(msg("d1", "TCAM_ERROR: unit 7 parity event"))
	if rule != "known-noise" || u != Notice {
		t.Fatalf("matched %s/%s, want known-noise/NOTICE (first rule wins)", rule, u)
	}
	rule, u = c.Process(msg("d1", "TCAM_ERROR: unit 2 parity event"))
	if rule != "tcam-critical" || u != Critical {
		t.Fatalf("matched %s/%s, want tcam-critical/CRITICAL", rule, u)
	}
	counts := c.Counts()
	if counts[Notice] != 1 || counts[Critical] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// Ignored lines — both unmatched lines and lines taken by an explicit
// suppression rule — are counted for Table 3 but never produce an alert.
func TestClassifierIgnoredCountedNotAlarmed(t *testing.T) {
	c := NewClassifier()
	autoRemediated := 0
	c.MustAddRule(Rule{
		Name: "suppress-lab", Pattern: `LINK_STATE: Interface lab`, Urgency: Ignored,
		AutoRemediate: func(m netsim.SyslogMessage) { autoRemediated++ },
	})
	c.MustAddRule(Rule{
		Name: "link-down", Pattern: `LINK_STATE: Interface .* changed state to down`, Urgency: Warning,
	})
	var alerts []Alert
	c.OnAlert(func(a Alert) { alerts = append(alerts, a) })

	// Unmatched line: counted Ignored, anonymous, no alert.
	rule, u := c.Process(msg("d1", "chassisd heartbeat ok"))
	if rule != "" || u != Ignored {
		t.Fatalf("unmatched line classified %q/%s", rule, u)
	}
	// Suppressed line: the Ignored rule shadows the later Warning rule,
	// the line is counted under Ignored, and no alert fires.
	rule, u = c.Process(msg("d1", "LINK_STATE: Interface lab0 changed state to down"))
	if rule != "suppress-lab" || u != Ignored {
		t.Fatalf("suppressed line classified %q/%s", rule, u)
	}
	// A production link-down still alerts.
	rule, u = c.Process(msg("d1", "LINK_STATE: Interface et1/1 changed state to down"))
	if rule != "link-down" || u != Warning {
		t.Fatalf("production line classified %q/%s", rule, u)
	}

	if counts := c.Counts(); counts[Ignored] != 2 || counts[Warning] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if len(alerts) != 1 || alerts[0].Rule != "link-down" {
		t.Fatalf("alerts = %+v, want exactly the production link-down", alerts)
	}
	if autoRemediated != 0 {
		t.Fatalf("suppressed line triggered auto-remediation")
	}
}
