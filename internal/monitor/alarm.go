package monitor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/vclock"
)

// The alarm engine closes the monitoring loop (§5.4): collected data is
// not just stored, it is *evaluated* against alarm rules derived from the
// same FBNet intent that produced the collection jobs. Each alarm walks a
// pending → firing → resolved lifecycle, is deduplicated while active,
// and — the part engineers actually use during an incident — is annotated
// at fire time with the operational events (design change, deploy,
// verify-gate verdict, reconcile journal) that immediately preceded it.

// AlarmState is one step of the alarm lifecycle.
type AlarmState string

const (
	AlarmPending  AlarmState = "pending"  // breached, waiting out PendingFor
	AlarmFiring   AlarmState = "firing"   // breached past PendingFor
	AlarmResolved AlarmState = "resolved" // previously firing, now clear
)

// AlarmKind selects the evaluation strategy of a rule.
type AlarmKind string

const (
	// KindThreshold compares the latest sample of a series to a value.
	KindThreshold AlarmKind = "threshold"
	// KindAbsence fires when a series that has reported before goes
	// silent for longer than Window.
	KindAbsence AlarmKind = "absence"
	// KindFlatline fires when the last two samples of a counter series
	// show no increase (a frozen octet counter on a supposedly-live port).
	KindFlatline AlarmKind = "flatline"
	// KindBGPState fires when the Derived BGP session (Device, Key=peer
	// address) is observed in any state other than Established.
	KindBGPState AlarmKind = "bgp-state"
	// KindFlap fires when at least FlapCount syslog alerts matching the
	// classifier rule named by Key arrive within Window.
	KindFlap AlarmKind = "flap"
)

// AlarmRule is one evaluable condition. Rules are typically derived from
// FBNet by DeriveJobs, not hand-written — monitoring config regenerates
// with the design, exactly like device config.
type AlarmRule struct {
	Name    string    // rule family, e.g. "bgp-session-down"
	Kind    AlarmKind //
	Device  string    // device the rule observes
	Key     string    // series key suffix, peer address, or syslog rule
	Urgency Urgency

	Op    string  // threshold: ==, !=, >=, <=, >, <
	Value float64 // threshold value

	Window    time.Duration // absence / flap look-back
	FlapCount int           // flap: alerts within Window to fire

	// PendingFor is how long a breach must persist before the alarm moves
	// from pending to firing; 0 fires on the first breached evaluation.
	PendingFor time.Duration
}

// id is the deduplication key: one active alarm per (rule, device, key).
func (r *AlarmRule) id() string { return r.Name + "|" + r.Device + "|" + r.Key }

// TimelineEntry is one event of the merged operational timeline: the
// design → generate → verify → deploy → alarm → reconcile stream, ordered
// and queryable (programmatically, via `robotron obs timeline`, and over
// HTTP /timeline).
type TimelineEntry struct {
	At     time.Time `json:"at"`
	Stage  string    `json:"stage"` // design, verify, deploy, monitor, alarm, reconcile
	Device string    `json:"device"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
}

func (e TimelineEntry) String() string {
	return fmt.Sprintf("%s %-9s %-16s %-18s %s",
		e.At.UTC().Format(time.RFC3339), e.Stage, e.Device, e.Kind, e.Detail)
}

// Alarm is one lifecycle instance of a rule breach.
type Alarm struct {
	Rule    string     `json:"rule"`
	Device  string     `json:"device"`
	Key     string     `json:"key"`
	State   AlarmState `json:"state"`
	Urgency string     `json:"urgency"`
	Detail  string     `json:"detail"`

	Since      time.Time `json:"since"`       // first breached evaluation
	FiredAt    time.Time `json:"fired_at"`    // zero while pending
	ResolvedAt time.Time `json:"resolved_at"` // zero until resolved

	// Correlated is the look-back annotation captured at fire time: the
	// most recent operational events inside the correlation window,
	// answering "what changed right before this broke?".
	Correlated []TimelineEntry `json:"correlated,omitempty"`
}

// JournalEntry is the reconciler-journal shape the engine accepts without
// importing the reconcile package (which imports monitor).
type JournalEntry struct {
	At     time.Time
	Device string
	Type   string
	Detail string
}

// DefaultCorrelationWindow is how far back an alarm looks for its causing
// events when no window is configured.
const DefaultCorrelationWindow = 15 * time.Minute

// DefaultCorrelationLimit caps how many correlated events ride on one
// alarm (the most recent win).
const DefaultCorrelationLimit = 8

// defaultAlertRing bounds the syslog alert history kept for flap rules.
const defaultAlertRing = 4096

// AlarmEngine evaluates rules over the timeseries store, the Derived
// models, and the syslog alert stream, all on a shared clock.
type AlarmEngine struct {
	clock vclock.Clock
	ts    *TimeseriesBackend
	store *fbnet.Store

	mu       sync.Mutex
	rules    []AlarmRule
	active   map[string]*Alarm // pending + firing, by rule id
	resolved []Alarm           // resolved history, oldest first
	alerts   []Alert           // recent syslog alerts, for flap rules
	journal  func() []JournalEntry
	window   time.Duration // correlation look-back

	// metrics, nil (no-op) until Instrument
	reg       *telemetry.Registry
	mFired    map[string]*telemetry.Counter
	mResolved map[string]*telemetry.Counter
	mFiring   *telemetry.Gauge
	mEvals    *telemetry.Counter
}

// NewAlarmEngine builds an engine over the given stores. clock may be nil
// (wall clock); store may be nil (BGP-state rules never fire; correlation
// sees only the reconcile journal).
func NewAlarmEngine(clock vclock.Clock, ts *TimeseriesBackend, store *fbnet.Store) *AlarmEngine {
	if clock == nil {
		clock = vclock.RealClock()
	}
	return &AlarmEngine{
		clock:  clock,
		ts:     ts,
		store:  store,
		active: make(map[string]*Alarm),
		window: DefaultCorrelationWindow,
	}
}

// SetCorrelationWindow changes the look-back window used when annotating
// a firing alarm; d <= 0 restores the default.
func (ae *AlarmEngine) SetCorrelationWindow(d time.Duration) {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	if d <= 0 {
		d = DefaultCorrelationWindow
	}
	ae.window = d
}

// SetJournalSource installs the reconcile-journal reader used for the
// timeline and correlation.
func (ae *AlarmEngine) SetJournalSource(src func() []JournalEntry) {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	ae.journal = src
}

// Subscribe attaches the engine to a classifier: every alert feeds the
// flap-rule history.
func (ae *AlarmEngine) Subscribe(cls *Classifier) {
	cls.OnAlert(ae.ObserveAlert)
}

// ObserveAlert records one syslog alert for flap evaluation.
func (ae *AlarmEngine) ObserveAlert(a Alert) {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	ae.alerts = append(ae.alerts, a)
	if len(ae.alerts) > defaultAlertRing {
		ae.alerts = append([]Alert(nil), ae.alerts[len(ae.alerts)-defaultAlertRing:]...)
	}
}

// Instrument mirrors alarm lifecycle transitions onto reg.
func (ae *AlarmEngine) Instrument(reg *telemetry.Registry) {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	ae.reg = reg
	reg.Help("robotron_alarms_fired_total", "alarms that reached the firing state, per rule")
	reg.Help("robotron_alarms_resolved_total", "firing alarms that resolved, per rule")
	reg.Help("robotron_alarms_firing", "alarms currently firing")
	reg.Help("robotron_alarm_evaluations_total", "alarm evaluation passes")
	ae.mFired = make(map[string]*telemetry.Counter)
	ae.mResolved = make(map[string]*telemetry.Counter)
	ae.mFiring = reg.Gauge("robotron_alarms_firing")
	ae.mEvals = reg.Counter("robotron_alarm_evaluations_total")
}

// ReplaceRules swaps the full derived rule set (sorted for deterministic
// evaluation order). Active alarms whose rule disappeared are dropped:
// the design no longer declares the thing they watched.
func (ae *AlarmEngine) ReplaceRules(rules []AlarmRule) {
	sorted := append([]AlarmRule(nil), rules...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		if sorted[i].Device != sorted[j].Device {
			return sorted[i].Device < sorted[j].Device
		}
		return sorted[i].Key < sorted[j].Key
	})
	ae.mu.Lock()
	defer ae.mu.Unlock()
	ae.rules = sorted
	known := make(map[string]bool, len(sorted))
	for i := range sorted {
		known[sorted[i].id()] = true
	}
	for id, al := range ae.active {
		if !known[id] {
			if al.State == AlarmFiring && ae.mFiring != nil {
				ae.mFiring.Dec()
			}
			delete(ae.active, id)
		}
	}
}

// Rules returns the installed rule set.
func (ae *AlarmEngine) Rules() []AlarmRule {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	return append([]AlarmRule(nil), ae.rules...)
}

// Evaluate runs one pass over every rule at the engine clock's now,
// walking lifecycles forward. It returns the alarms currently firing,
// sorted by (rule, device, key).
func (ae *AlarmEngine) Evaluate() []Alarm {
	now := ae.clock.Now()
	ae.mu.Lock()
	defer ae.mu.Unlock()
	if ae.mEvals != nil {
		ae.mEvals.Inc()
	}
	for i := range ae.rules {
		r := &ae.rules[i]
		breached, detail := ae.evalLocked(r, now)
		id := r.id()
		al := ae.active[id]
		switch {
		case breached && al == nil:
			al = &Alarm{
				Rule: r.Name, Device: r.Device, Key: r.Key,
				State: AlarmPending, Urgency: r.Urgency.String(),
				Detail: detail, Since: now,
			}
			ae.active[id] = al
			ae.maybeFireLocked(r, al, now)
		case breached:
			al.Detail = detail
			ae.maybeFireLocked(r, al, now)
		case al != nil && al.State == AlarmFiring:
			al.State = AlarmResolved
			al.ResolvedAt = now
			ae.resolved = append(ae.resolved, *al)
			delete(ae.active, id)
			if ae.mFiring != nil {
				ae.mFiring.Dec()
				ae.ruleCounter(ae.mResolved, "robotron_alarms_resolved_total", r.Name).Inc()
			}
		case al != nil:
			// Pending breach cleared before PendingFor elapsed: no alarm.
			delete(ae.active, id)
		}
	}
	return ae.firingLocked()
}

func (ae *AlarmEngine) maybeFireLocked(r *AlarmRule, al *Alarm, now time.Time) {
	if al.State != AlarmPending || now.Sub(al.Since) < r.PendingFor {
		return
	}
	al.State = AlarmFiring
	al.FiredAt = now
	al.Correlated = ae.timelineLocked(now.Add(-ae.window), now, false)
	if n := len(al.Correlated); n > DefaultCorrelationLimit {
		al.Correlated = al.Correlated[n-DefaultCorrelationLimit:]
	}
	if ae.mFiring != nil {
		ae.mFiring.Inc()
		ae.ruleCounter(ae.mFired, "robotron_alarms_fired_total", r.Name).Inc()
	}
}

func (ae *AlarmEngine) ruleCounter(m map[string]*telemetry.Counter, metric, rule string) *telemetry.Counter {
	c, ok := m[rule]
	if !ok {
		c = ae.reg.Counter(metric, telemetry.Label{Key: "rule", Value: rule})
		m[rule] = c
	}
	return c
}

// evalLocked decides whether one rule is breached right now.
func (ae *AlarmEngine) evalLocked(r *AlarmRule, now time.Time) (bool, string) {
	switch r.Kind {
	case KindThreshold:
		last := ae.ts.Last(r.Device+"/"+r.Key, 1)
		if len(last) == 0 {
			return false, ""
		}
		if compareFloat(last[0].Value, r.Op, r.Value) {
			return true, fmt.Sprintf("%s = %g, breaching %s %g", r.Key, last[0].Value, r.Op, r.Value)
		}
	case KindAbsence:
		last := ae.ts.Last(r.Device+"/"+r.Key, 1)
		if len(last) == 0 {
			return false, "" // never reported: nothing to go silent
		}
		age := now.Sub(time.Unix(last[0].AtUnix, 0))
		if age > r.Window {
			return true, fmt.Sprintf("%s silent for %s (window %s)", r.Key, age.Round(time.Second), r.Window)
		}
	case KindFlatline:
		last := ae.ts.Last(r.Device+"/"+r.Key, 2)
		if len(last) < 2 {
			return false, ""
		}
		if last[1].Value <= last[0].Value {
			return true, fmt.Sprintf("%s flat at %g across the last two samples", r.Key, last[1].Value)
		}
	case KindBGPState:
		if ae.store == nil {
			return false, ""
		}
		rows, err := ae.store.Find("DerivedBgpSession", fbnet.And(
			fbnet.Eq("device_name", r.Device), fbnet.Eq("peer_addr", r.Key)))
		if err != nil || len(rows) == 0 {
			return false, ""
		}
		if st := rows[0].String("state"); st != "Established" {
			return true, fmt.Sprintf("session to %s observed %s", r.Key, st)
		}
	case KindFlap:
		n := 0
		for i := range ae.alerts {
			a := &ae.alerts[i]
			if a.Rule != r.Key {
				continue
			}
			if r.Device != "" && a.Message.Host != r.Device {
				continue
			}
			if now.Sub(a.Message.Time) <= r.Window {
				n++
			}
		}
		if n >= r.FlapCount {
			return true, fmt.Sprintf("%d %q alerts within %s", n, r.Key, r.Window)
		}
	}
	return false, ""
}

func compareFloat(got float64, op string, want float64) bool {
	switch op {
	case "==":
		return got == want
	case "!=":
		return got != want
	case ">=":
		return got >= want
	case "<=":
		return got <= want
	case ">":
		return got > want
	case "<":
		return got < want
	}
	return false
}

func (ae *AlarmEngine) firingLocked() []Alarm {
	out := make([]Alarm, 0, len(ae.active))
	for _, al := range ae.active {
		if al.State == AlarmFiring {
			out = append(out, *al)
		}
	}
	sortAlarms(out)
	return out
}

func sortAlarms(xs []Alarm) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Rule != xs[j].Rule {
			return xs[i].Rule < xs[j].Rule
		}
		if xs[i].Device != xs[j].Device {
			return xs[i].Device < xs[j].Device
		}
		return xs[i].Key < xs[j].Key
	})
}

// Firing returns the alarms currently firing without re-evaluating.
func (ae *AlarmEngine) Firing() []Alarm {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	return ae.firingLocked()
}

// Snapshot returns every known alarm — pending, firing, and resolved
// history — sorted firing first, then pending, then resolved, each group
// by (rule, device, key).
func (ae *AlarmEngine) Snapshot() []Alarm {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	var firing, pending []Alarm
	for _, al := range ae.active {
		if al.State == AlarmFiring {
			firing = append(firing, *al)
		} else {
			pending = append(pending, *al)
		}
	}
	sortAlarms(firing)
	sortAlarms(pending)
	resolved := append([]Alarm(nil), ae.resolved...)
	sortAlarms(resolved)
	out := append(firing, pending...)
	return append(out, resolved...)
}

// Timeline returns the merged operational stream between from and to
// (zero values mean unbounded), alarms included, ordered by time with
// deterministic tie-breaks.
func (ae *AlarmEngine) Timeline(from, to time.Time) []TimelineEntry {
	ae.mu.Lock()
	defer ae.mu.Unlock()
	return ae.timelineLocked(from, to, true)
}

// timelineLocked assembles the stream; withAlarms=false is the
// correlation flavor (an alarm must not correlate with itself).
func (ae *AlarmEngine) timelineLocked(from, to time.Time, withAlarms bool) []TimelineEntry {
	var out []TimelineEntry
	add := func(e TimelineEntry) {
		if !from.IsZero() && e.At.Before(from) {
			return
		}
		if !to.IsZero() && e.At.After(to) {
			return
		}
		out = append(out, e)
	}
	if ae.store != nil {
		if changes, err := ae.store.Find("DesignChange", nil); err == nil {
			for _, c := range changes {
				add(TimelineEntry{
					At: time.Unix(c.Int("created_unix"), 0), Stage: "design",
					Device: "-", Kind: "design-change",
					Detail: fmt.Sprintf("%s %s: %s (+%d ~%d -%d)",
						c.String("employee_id"), c.String("ticket_id"), c.String("description"),
						c.Int("num_created"), c.Int("num_modified"), c.Int("num_deleted")),
				})
			}
		}
		if events, err := ae.store.Find("OperationalEvent", nil); err == nil {
			for _, ev := range events {
				kind := ev.String("kind")
				stage := "monitor"
				switch kind {
				case "verify-gate":
					stage = "verify"
				case "deploy", "provision":
					stage = "deploy"
				}
				add(TimelineEntry{
					At: time.Unix(ev.Int("at_unix"), 0), Stage: stage,
					Device: ev.String("device_name"), Kind: kind,
					Detail: ev.String("urgency") + " " + ev.String("detail"),
				})
			}
		}
	}
	if ae.journal != nil {
		for _, je := range ae.journal() {
			add(TimelineEntry{
				At: je.At, Stage: "reconcile", Device: je.Device,
				Kind: je.Type, Detail: je.Detail,
			})
		}
	}
	if withAlarms {
		emit := func(al Alarm) {
			if !al.FiredAt.IsZero() {
				add(TimelineEntry{At: al.FiredAt, Stage: "alarm", Device: al.Device,
					Kind: al.Rule, Detail: "FIRING " + al.Detail})
			}
			if !al.ResolvedAt.IsZero() {
				add(TimelineEntry{At: al.ResolvedAt, Stage: "alarm", Device: al.Device,
					Kind: al.Rule, Detail: "RESOLVED " + al.Detail})
			}
		}
		for _, al := range ae.active {
			emit(*al)
		}
		for _, al := range ae.resolved {
			emit(al)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// FormatAlarms renders alarms as a fixed-width table, firing first.
func FormatAlarms(alarms []Alarm) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %-16s %-24s %-8s %s\n",
		"STATE", "RULE", "DEVICE", "KEY", "URGENCY", "DETAIL")
	for _, al := range alarms {
		fmt.Fprintf(&b, "%-8s %-22s %-16s %-24s %-8s %s\n",
			string(al.State), al.Rule, al.Device, al.Key, al.Urgency, al.Detail)
		for _, c := range al.Correlated {
			fmt.Fprintf(&b, "    ↳ %s\n", c)
		}
	}
	return b.String()
}
