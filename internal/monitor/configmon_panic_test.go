package monitor

import (
	"strings"
	"sync"
	"testing"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// TestConfigMonitorRecoversPanickingCheck: a panic out of a backend
// check (here the golden resolver) must not kill the classifier's
// alert path — it is converted to a check error, counted in both
// CheckErrors and CheckPanics, and delivered to OnCheckError.
func TestConfigMonitorRecoversPanickingCheck(t *testing.T) {
	_, jm, store, repo := newMonitoredFleet(t, 1)
	cls := NewClassifier()
	StandardRules(cls)
	cm := NewConfigMonitor(jm, repo, store, func(d string) (string, error) {
		panic("golden store corrupted")
	})
	reg := telemetry.NewRegistry()
	cm.Instrument(reg)
	cm.Attach(cls)

	var mu sync.Mutex
	var heard []string
	cm.OnCheckError(func(device string, err error) {
		mu.Lock()
		heard = append(heard, device+": "+err.Error())
		mu.Unlock()
	})

	// Direct call: the panic surfaces as an error, not a crash.
	if _, err := cm.CheckDevice("dev00"); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("CheckDevice err = %v, want recovered panic", err)
	}
	if n := cm.CheckPanics(); n != 1 {
		t.Errorf("CheckPanics = %d, want 1", n)
	}
	// Alert-triggered call: same recovery, plus the error-counter/hook
	// pair advances together.
	cls.Process(msg("dev00", "CONFIG_CHANGED: configuration changed out-of-band"))
	if n := cm.CheckErrors(); n != 1 {
		t.Errorf("CheckErrors = %d, want 1 (only the alert-triggered check routes to noteCheckError)", n)
	}
	if n := cm.CheckPanics(); n != 2 {
		t.Errorf("CheckPanics = %d, want 2", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(heard) != 1 || !strings.Contains(heard[0], "dev00") || !strings.Contains(heard[0], "panicked") {
		t.Fatalf("OnCheckError heard = %v", heard)
	}
	// Registry mirrors agree with the authoritative getters.
	if v := reg.Counter("robotron_monitor_check_panics_total").Value(); v != 2 {
		t.Errorf("panic counter on registry = %d, want 2", v)
	}
	if v := reg.Counter("robotron_monitor_check_errors_total").Value(); v != 1 {
		t.Errorf("error counter on registry = %d, want 1", v)
	}
}

// TestNoteCheckErrorAtomicWithHook: the counter and the hook fire in
// one critical section — a handler observing the count mid-callback
// always sees a value that includes its own invocation, with no window
// where the counter ran ahead of (or behind) the callbacks. Run with
// -race.
func TestNoteCheckErrorAtomicWithHook(t *testing.T) {
	_, jm, store, repo := newMonitoredFleet(t, 1)
	cm := NewConfigMonitor(jm, repo, store, func(d string) (string, error) {
		return "", nil
	})
	var calls int64
	cm.OnCheckError(func(device string, err error) {
		calls++ // guarded by cm.mu: handlers run under the monitor's lock
		if calls != cm.checkErrs {
			t.Errorf("handler saw calls=%d but checkErrs=%d", calls, cm.checkErrs)
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				cm.noteCheckError("dev00", errFake)
			}
		}()
	}
	wg.Wait()
	if n := cm.CheckErrors(); n != 800 {
		t.Errorf("CheckErrors = %d, want 800", n)
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if calls != 800 {
		t.Errorf("handler calls = %d, want 800", calls)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "synthetic check failure" }
