package monitor

import (
	"fmt"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// Ablation: the classifier's literal fast path (DESIGN.md design choice).
// Production rule sets are dominated by literal markers; matching those
// with substring search instead of compiled regexes is what keeps a
// ~700-rule classifier viable at tens of millions of messages per day.
// Benchmark both paths over an identical rule population.

func buildAblationRules(n int, forceRegex bool) *Classifier {
	c := NewClassifier()
	for i := 0; i < n; i++ {
		pattern := fmt.Sprintf("SYN_RULE_%04d:", i)
		if forceRegex {
			// A character class defeats literal detection without changing
			// what the rule matches.
			pattern = fmt.Sprintf("SYN[_]RULE[_]%04d:", i)
		}
		c.MustAddRule(Rule{Name: fmt.Sprintf("r%d", i), Pattern: pattern, Urgency: Warning})
	}
	return c
}

func ablationMessages() []netsim.SyslogMessage {
	// Worst case: ignored messages scan the entire rule list.
	msgs := make([]netsim.SyslogMessage, 4)
	for i := range msgs {
		msgs[i] = netsim.SyslogMessage{
			Severity: 5, Host: "dev", App: "app",
			Text: fmt.Sprintf("LSP change: recomputed path %d, no rule matches this", i),
			Time: time.Unix(0, 0),
		}
	}
	return msgs
}

func BenchmarkClassifierLiteralPath(b *testing.B) {
	c := buildAblationRules(700, false)
	msgs := ablationMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(msgs[i%len(msgs)])
	}
}

func BenchmarkClassifierRegexPath(b *testing.B) {
	c := buildAblationRules(700, true)
	msgs := ablationMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(msgs[i%len(msgs)])
	}
}

// TestLiteralAndRegexPathsAgree: the fast path is an optimization, not a
// semantic change.
func TestLiteralAndRegexPathsAgree(t *testing.T) {
	lit := buildAblationRules(50, false)
	rex := buildAblationRules(50, true)
	cases := []string{
		"SYN_RULE_0007: hello",
		"prefix SYN_RULE_0049: suffix",
		"SYN_RULE_9999: unknown rule id",
		"no match at all",
		"SYN_RULE_007: short id does not match",
	}
	for _, text := range cases {
		m := netsim.SyslogMessage{Severity: 5, Host: "d", App: "a", Text: text, Time: time.Unix(0, 0)}
		r1, u1 := lit.Process(m)
		r2, u2 := rex.Process(m)
		if r1 != r2 || u1 != u2 {
			t.Errorf("paths disagree on %q: literal (%s,%s) vs regex (%s,%s)", text, r1, u1, r2, u2)
		}
	}
}

// TestAnycastCollectorGroup: multiple collectors (the paper's anycast
// members) share one classifier; messages land on any member and the
// aggregate counts converge.
func TestAnycastCollectorGroup(t *testing.T) {
	cls := NewClassifier()
	StandardRules(cls)
	var collectors []*Collector
	for i := 0; i < 3; i++ {
		col, err := NewCollector("127.0.0.1:0", cls)
		if err != nil {
			t.Fatal(err)
		}
		defer col.Close()
		collectors = append(collectors, col)
	}
	fleet := netsim.NewFleet()
	const n = 9
	for i := 0; i < n; i++ {
		d, _ := fleet.AddDevice(fmt.Sprintf("dev%d", i), netsim.Vendor1, "psw", "pop1")
		// Each device is "routed" to a different anycast member.
		sink, err := netsim.UDPSyslogSink(collectors[i%len(collectors)].Addr())
		if err != nil {
			t.Fatal(err)
		}
		d.SetSyslogSink(sink)
		d.LoadConfig("interface ae0\n")
		d.Commit() // emits CONFIG_CHANGED
	}
	deadline := time.Now().Add(2 * time.Second)
	for cls.Total() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cls.Counts()[Notice] != n {
		t.Errorf("anycast group classified %d notices, want %d", cls.Counts()[Notice], n)
	}
}
