package monitor

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/revctl"
)

func msg(host, text string) netsim.SyslogMessage {
	return netsim.SyslogMessage{Severity: 4, Host: host, App: "test", Text: text, Time: time.Now()}
}

func TestClassifierRulesAndCounts(t *testing.T) {
	c := NewClassifier()
	StandardRules(c)
	cases := []struct {
		text string
		want Urgency
	}{
		{"DEVICE_REBOOT: System reboot requested", Critical},
		{"LINECARD_REMOVED: Linecard in slot 2 removed", Major},
		{"IP_CONFLICT: duplicate address detected", Minor},
		{"LINK_STATE: Interface ae0 changed state to down", Warning},
		{"LINK_STATE: Interface ae0 changed state to up", Ignored},
		{"CONFIG_CHANGED: configuration committed", Notice},
		{"LSP change on path 7", Ignored},
		{"User authentication succeeded", Ignored},
	}
	for _, tc := range cases {
		_, got := c.Process(msg("dev1", tc.text))
		if got != tc.want {
			t.Errorf("Process(%q) urgency = %s, want %s", tc.text, got, tc.want)
		}
	}
	counts := c.Counts()
	if counts[Ignored] != 3 || counts[Critical] != 1 || counts[Warning] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if c.Total() != int64(len(cases)) {
		t.Errorf("total = %d", c.Total())
	}
	rules := c.RuleCounts()
	if rules[Critical] != 2 || rules[Notice] != 4 {
		t.Errorf("rule counts = %v", rules)
	}
}

func TestClassifierFirstMatchWins(t *testing.T) {
	c := NewClassifier()
	c.MustAddRule(Rule{Name: "specific", Pattern: `CONFIG_CHANGED: special`, Urgency: Major})
	c.MustAddRule(Rule{Name: "generic", Pattern: `CONFIG_CHANGED`, Urgency: Notice})
	rule, u := c.Process(msg("d", "CONFIG_CHANGED: special case"))
	if rule != "specific" || u != Major {
		t.Errorf("matched %s/%s", rule, u)
	}
}

func TestClassifierValidation(t *testing.T) {
	c := NewClassifier()
	if err := c.AddRule(Rule{Name: "bad", Pattern: "("}); err == nil {
		t.Error("bad regex should fail")
	}
	c.MustAddRule(Rule{Name: "x", Pattern: "a"})
	if err := c.AddRule(Rule{Name: "x", Pattern: "b"}); err == nil {
		t.Error("duplicate rule name should fail")
	}
}

func TestClassifierAutoRemediate(t *testing.T) {
	c := NewClassifier()
	var remediated []string
	c.MustAddRule(Rule{
		Name: "flap", Pattern: `LINK_STATE`, Urgency: Warning,
		AutoRemediate: func(m netsim.SyslogMessage) { remediated = append(remediated, m.Host) },
	})
	c.Process(msg("dev9", "LINK_STATE: Interface et1/1 changed state to down"))
	if len(remediated) != 1 || remediated[0] != "dev9" {
		t.Errorf("remediated = %v", remediated)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	cls := NewClassifier()
	StandardRules(cls)
	var mu sync.Mutex
	var alerts []Alert
	cls.OnAlert(func(a Alert) { mu.Lock(); alerts = append(alerts, a); mu.Unlock() })

	col, err := NewCollector("127.0.0.1:0", cls)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Devices log to the collector's (anycast) address over UDP.
	fleet := netsim.NewFleet()
	d, _ := fleet.AddDevice("psw1", netsim.Vendor1, "psw", "pop1")
	sink, err := netsim.UDPSyslogSink(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	d.SetSyslogSink(sink)
	d.LoadConfig("interface ae0\n")
	d.Commit()
	d.Reboot()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cls.Total() >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	counts := cls.Counts()
	if counts[Notice] < 1 { // CONFIG_CHANGED
		t.Errorf("no config-changed event: %v", counts)
	}
	if counts[Critical] < 1 { // DEVICE_REBOOT
		t.Errorf("no reboot event: %v", counts)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) < 2 {
		t.Errorf("alerts = %d", len(alerts))
	}
}

// newMonitoredFleet builds a fleet + job manager + backends over a fresh
// FBNet store.
func newMonitoredFleet(t testing.TB, n int) (*netsim.Fleet, *JobManager, *fbnet.Store, *revctl.Repo) {
	t.Helper()
	fleet := netsim.NewFleet()
	for i := 0; i < n; i++ {
		d, err := fleet.AddDevice(fmt.Sprintf("dev%02d", i), netsim.Vendor1, "psw", "pop1")
		if err != nil {
			t.Fatal(err)
		}
		d.LoadConfig(fmt.Sprintf("hostname dev%02d\ninterface et1/1\ninterface et1/2\n", i))
		d.Commit()
	}
	// Cable a chain so LLDP has content.
	for i := 0; i+1 < n; i++ {
		if err := fleet.Wire(fmt.Sprintf("dev%02d", i), "et1/2", fmt.Sprintf("dev%02d", i+1), "et1/1"); err != nil {
			t.Fatal(err)
		}
	}
	db := relstore.NewDB("master")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	repo := revctl.NewRepo()
	jm := NewJobManager(FleetDeviceResolver(fleet))
	for _, b := range []Backend{NewTimeseriesBackend(), NewDerivedBackend(store), NewConfigBackend(repo)} {
		if err := jm.RegisterBackend(b); err != nil {
			t.Fatal(err)
		}
	}
	return fleet, jm, store, repo
}

func TestJobValidation(t *testing.T) {
	_, jm, _, _ := newMonitoredFleet(t, 2)
	good := JobSpec{Name: "j", Period: time.Second, Engine: EngineSNMP, Data: DataCounters, Devices: []string{"dev00"}}
	if err := jm.AddJob(good); err != nil {
		t.Fatal(err)
	}
	cases := []JobSpec{
		{Name: "", Period: time.Second, Engine: EngineSNMP, Data: DataCounters, Devices: []string{"dev00"}},
		{Name: "j", Period: time.Second, Engine: EngineSNMP, Data: DataCounters, Devices: []string{"dev00"}}, // dup
		{Name: "k", Period: 0, Engine: EngineSNMP, Data: DataCounters, Devices: []string{"dev00"}},
		{Name: "l", Period: time.Second, Engine: "bogus", Data: DataCounters, Devices: []string{"dev00"}},
		{Name: "m", Period: time.Second, Engine: EngineSNMP, Data: DataLLDP, Devices: []string{"dev00"}}, // snmp can't lldp
		{Name: "n", Period: time.Second, Engine: EngineSNMP, Data: DataCounters},
		{Name: "o", Period: time.Second, Engine: EngineSNMP, Data: DataCounters, Devices: []string{"dev00"}, Backends: []string{"ghost"}},
	}
	for _, spec := range cases {
		if err := jm.AddJob(spec); err == nil {
			t.Errorf("AddJob(%+v) should fail", spec)
		}
	}
}

func TestEngineCapabilities(t *testing.T) {
	engines := NewEngines()
	if engines[EngineSNMP].Supports(DataConfig) {
		t.Error("SNMP must not collect configs")
	}
	if !engines[EngineCLI].Supports(DataLLDP) {
		t.Error("CLI must collect LLDP (vendor-gap fallback)")
	}
	if !engines[EngineThrift].Supports(DataBGP) {
		t.Error("Thrift should collect BGP")
	}
}

func TestRunOncePopulatesBackends(t *testing.T) {
	_, jm, store, repo := newMonitoredFleet(t, 3)
	specs := []JobSpec{
		{Name: "counters", Period: time.Minute, Engine: EngineSNMP, Data: DataCounters,
			Devices: []string{"dev00", "dev01", "dev02"}, Backends: []string{"timeseries"}},
		{Name: "ifaces", Period: time.Minute, Engine: EngineRPCXML, Data: DataInterfaces,
			Devices: []string{"dev00", "dev01", "dev02"}, Backends: []string{"fbnet-derived"}},
		{Name: "lldp", Period: time.Minute, Engine: EngineCLI, Data: DataLLDP,
			Devices: []string{"dev00", "dev01", "dev02"}, Backends: []string{"fbnet-derived"}},
		{Name: "version", Period: time.Minute, Engine: EngineThrift, Data: DataVersion,
			Devices: []string{"dev00", "dev01", "dev02"}, Backends: []string{"fbnet-derived"}},
		{Name: "config", Period: time.Minute, Engine: EngineCLI, Data: DataConfig,
			Devices: []string{"dev00"}, Backends: []string{"config-backup"}},
	}
	for _, s := range specs {
		if _, err := jm.RunOnce(s); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	// Timeseries got counter samples.
	ts := jm.backends["timeseries"].(*TimeseriesBackend)
	if len(ts.Keys()) == 0 {
		t.Error("no timeseries keys")
	}
	if s := ts.Series("dev00/cpu_util"); len(s) != 1 {
		t.Errorf("cpu series = %v", s)
	}
	// Derived models populated.
	if n, _ := store.Count("DerivedDevice"); n != 3 {
		t.Errorf("DerivedDevice = %d", n)
	}
	if n, _ := store.Count("DerivedInterface"); n != 6 {
		t.Errorf("DerivedInterface = %d", n)
	}
	// oper_status reflects the chain wiring: dev01 middle has both up.
	objs, _ := store.Find("DerivedInterface", fbnet.And(
		fbnet.Eq("device_name", "dev01"), fbnet.Eq("oper_status", "up")))
	if len(objs) != 2 {
		t.Errorf("dev01 up interfaces = %d, want 2", len(objs))
	}
	// Config backup archived.
	if _, err := repo.GetHead(BackupPath("dev00")); err != nil {
		t.Errorf("no config backup: %v", err)
	}
	// Event stats counted per engine.
	counts := jm.Stats().Counts()
	if counts[EngineSNMP] != 3 || counts[EngineCLI] != 4 || counts[EngineRPCXML] != 3 || counts[EngineThrift] != 3 {
		t.Errorf("event counts = %v", counts)
	}
}

func TestUpsertIdempotent(t *testing.T) {
	_, jm, store, _ := newMonitoredFleet(t, 1)
	spec := JobSpec{Name: "v", Period: time.Minute, Engine: EngineThrift, Data: DataVersion,
		Devices: []string{"dev00"}, Backends: []string{"fbnet-derived"}}
	for i := 0; i < 3; i++ {
		if _, err := jm.RunOnce(spec); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := store.Count("DerivedDevice"); n != 1 {
		t.Errorf("DerivedDevice = %d after repeated polls, want 1", n)
	}
}

func TestDeriveCircuitsFromLLDP(t *testing.T) {
	_, jm, store, _ := newMonitoredFleet(t, 4)
	if _, err := jm.RunOnce(JobSpec{Name: "lldp", Period: time.Minute, Engine: EngineCLI,
		Data: DataLLDP, Devices: []string{"dev00", "dev01", "dev02", "dev03"},
		Backends: []string{"fbnet-derived"}}); err != nil {
		t.Fatal(err)
	}
	n, err := DeriveCircuits(store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // chain of 4 devices = 3 circuits
		t.Errorf("derived circuits = %d, want 3", n)
	}
	objs, _ := store.Find("DerivedCircuit", nil)
	for _, o := range objs {
		if o.String("a_device") >= o.String("z_device") {
			t.Errorf("non-canonical circuit orientation: %+v", o.Fields)
		}
	}
	// Idempotent re-derivation.
	n2, _ := DeriveCircuits(store)
	if n2 != 3 {
		t.Errorf("re-derivation = %d", n2)
	}
	if cnt, _ := store.Count("DerivedCircuit"); cnt != 3 {
		t.Errorf("DerivedCircuit = %d after re-derivation", cnt)
	}
}

// TestDeriveCircuitsRequiresBothSides: a one-sided LLDP claim (far side
// down) must not produce a circuit.
func TestDeriveCircuitsRequiresBothSides(t *testing.T) {
	db := relstore.NewDB("m")
	store, _ := fbnet.Open(db, fbnet.NewCatalog())
	_, err := store.Mutate(func(m *fbnet.Mutation) error {
		_, err := m.Create("DerivedLldpNeighbor", map[string]any{
			"device_name": "a", "interface_name": "et1/1",
			"neighbor_device": "b", "neighbor_interface": "et1/1",
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := DeriveCircuits(store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("one-sided adjacency produced %d circuits", n)
	}
}

func TestRunVirtualDeterministicCounts(t *testing.T) {
	_, jm, _, _ := newMonitoredFleet(t, 2)
	jm.AddJob(JobSpec{Name: "fast", Period: time.Minute, Engine: EngineSNMP,
		Data: DataCounters, Devices: []string{"dev00", "dev01"}})
	jm.AddJob(JobSpec{Name: "slow", Period: 10 * time.Minute, Engine: EngineCLI,
		Data: DataConfig, Devices: []string{"dev00"}})
	jm.RunVirtual(time.Hour)
	counts := jm.Stats().Counts()
	if counts[EngineSNMP] != 120 { // 60 runs x 2 devices
		t.Errorf("snmp events = %d, want 120", counts[EngineSNMP])
	}
	if counts[EngineCLI] != 6 {
		t.Errorf("cli events = %d, want 6", counts[EngineCLI])
	}
}

func TestStartStopRealTime(t *testing.T) {
	_, jm, _, _ := newMonitoredFleet(t, 1)
	jm.AddJob(JobSpec{Name: "fast", Period: 10 * time.Millisecond, Engine: EngineSNMP,
		Data: DataCounters, Devices: []string{"dev00"}})
	jm.Start()
	deadline := time.Now().Add(2 * time.Second)
	for jm.Stats().Counts()[EngineSNMP] < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	jm.Stop()
	if jm.Stats().Counts()[EngineSNMP] < 3 {
		t.Errorf("periodic polling produced %d events", jm.Stats().Counts()[EngineSNMP])
	}
	n := jm.Stats().Counts()[EngineSNMP]
	time.Sleep(30 * time.Millisecond)
	if jm.Stats().Counts()[EngineSNMP] != n {
		t.Error("polling continued after Stop")
	}
}

func TestUnreachableDeviceCountsError(t *testing.T) {
	fleet, jm, _, _ := newMonitoredFleet(t, 2)
	d, _ := fleet.Device("dev01")
	d.SetDown(true)
	jm.RunOnce(JobSpec{Name: "c", Period: time.Minute, Engine: EngineSNMP,
		Data: DataCounters, Devices: []string{"dev00", "dev01"}})
	if jm.Stats().Errors() != 1 {
		t.Errorf("errors = %d, want 1", jm.Stats().Errors())
	}
	if jm.Stats().Counts()[EngineSNMP] != 1 {
		t.Errorf("successful polls = %d, want 1", jm.Stats().Counts()[EngineSNMP])
	}
}

func TestConfigMonitorDetectsDriftAndRestores(t *testing.T) {
	fleet, jm, store, repo := newMonitoredFleet(t, 2)
	dev, _ := fleet.Device("dev00")
	goldenCfg, _ := dev.RunningConfig()
	repo.Commit("golden/dev00", goldenCfg, "robotron", "provisioned")

	cls := NewClassifier()
	StandardRules(cls)
	cm := NewConfigMonitor(jm, repo, store, func(d string) (string, error) {
		return repo.GetHead("golden/" + d)
	})
	cm.Attach(cls)
	var mu sync.Mutex
	var notified []Deviation
	cm.OnDeviation(func(d Deviation) { mu.Lock(); notified = append(notified, d); mu.Unlock() })

	// Engineer bypasses Robotron (§8 Automation Fallbacks): manual change
	// emits a syslog that the classifier routes to the config monitor.
	dev.SetSyslogSink(func(m netsim.SyslogMessage) { cls.Process(m) })
	if err := dev.ApplyManualChange("snmp-server community leaked"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	got := len(notified)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("deviations notified = %d, want 1", got)
	}
	mu.Lock()
	devn := notified[0]
	mu.Unlock()
	if devn.Device != "dev00" || !strings.Contains(devn.Diff, "+ snmp-server community leaked") {
		t.Errorf("deviation = %+v", devn)
	}
	// Conformance recorded in Derived models.
	obj, err := store.FindOne("DerivedConfig", fbnet.Eq("device_name", "dev00"))
	if err != nil {
		t.Fatal(err)
	}
	if obj.Bool("conforms") {
		t.Error("DerivedConfig should record non-conformance")
	}
	// The drifted config was archived for rollback.
	backup, err := repo.GetHead(BackupPath("dev00"))
	if err != nil || !strings.Contains(backup, "leaked") {
		t.Errorf("drifted config not archived: %v", err)
	}
	// Restore pushes golden back and conformance recovers.
	if err := cm.Restore("dev00", dev); err != nil {
		t.Fatal(err)
	}
	cur, _ := dev.RunningConfig()
	if cur != goldenCfg {
		t.Error("restore did not reinstate golden config")
	}
	obj, _ = store.FindOne("DerivedConfig", fbnet.Eq("device_name", "dev00"))
	if !obj.Bool("conforms") {
		t.Error("conformance not updated after restore")
	}
}

func TestConfigMonitorConformingChangeIsQuiet(t *testing.T) {
	fleet, jm, store, repo := newMonitoredFleet(t, 1)
	dev, _ := fleet.Device("dev00")
	cfg, _ := dev.RunningConfig()
	repo.Commit("golden/dev00", cfg, "robotron", "provisioned")
	cm := NewConfigMonitor(jm, repo, store, func(d string) (string, error) {
		return repo.GetHead("golden/" + d)
	})
	devn, err := cm.CheckDevice("dev00")
	if err != nil {
		t.Fatal(err)
	}
	if devn != nil {
		t.Errorf("conforming device reported deviation: %+v", devn)
	}
	if len(cm.Deviations()) != 0 {
		t.Error("deviation recorded for conforming device")
	}
}

func TestFormatTables(t *testing.T) {
	c := NewClassifier()
	StandardRules(c)
	c.Process(msg("d", "DEVICE_REBOOT: x"))
	c.Process(msg("d", "noise"))
	t3 := FormatTable3(c)
	if !strings.Contains(t3, "CRITICAL") || !strings.Contains(t3, "IGNORED") {
		t.Errorf("table3 = %q", t3)
	}
	stats := newEventStats()
	stats.add(EngineSNMP, 100)
	stats.add(EngineCLI, 20)
	t2 := FormatTable2(stats, 40)
	if !strings.Contains(t2, "SNMP (active)") || !strings.Contains(t2, "Syslog (passive)") {
		t.Errorf("table2 = %q", t2)
	}
	if !strings.Contains(t2, "62.50%") { // 100/160
		t.Errorf("table2 percentages wrong:\n%s", t2)
	}
}

func BenchmarkClassifier(b *testing.B) {
	c := NewClassifier()
	StandardRules(c)
	msgs := []netsim.SyslogMessage{
		msg("d", "LINK_STATE: Interface ae0 changed state to down"),
		msg("d", "LSP change ignored noise message"),
		msg("d", "CONFIG_CHANGED: configuration committed"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Process(msgs[i%len(msgs)])
	}
}

func BenchmarkSNMPPoll(b *testing.B) {
	_, jm, _, _ := newMonitoredFleet(b, 8)
	spec := JobSpec{Name: "bench", Period: time.Minute, Engine: EngineSNMP,
		Data: DataCounters, Devices: SortedDeviceNamesN(8)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jm.RunOnce(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// SortedDeviceNamesN builds devNN names for benches.
func SortedDeviceNamesN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dev%02d", i)
	}
	return out
}

// TestConfigMonitorReportsCheckErrors: an event-triggered check that
// errors (device unreachable) must not vanish — the counter advances and
// OnCheckError subscribers hear about it.
func TestConfigMonitorReportsCheckErrors(t *testing.T) {
	fleet, jm, store, repo := newMonitoredFleet(t, 1)
	dev, _ := fleet.Device("dev00")
	cfg, _ := dev.RunningConfig()
	repo.Commit("golden/dev00", cfg, "robotron", "provisioned")

	cls := NewClassifier()
	StandardRules(cls)
	cm := NewConfigMonitor(jm, repo, store, func(d string) (string, error) {
		return repo.GetHead("golden/" + d)
	})
	cm.Attach(cls)
	var mu sync.Mutex
	type checkErr struct {
		device string
		err    error
	}
	var heard []checkErr
	cm.OnCheckError(func(device string, err error) {
		mu.Lock()
		heard = append(heard, checkErr{device, err})
		mu.Unlock()
	})

	dev.SetDown(true)
	cls.Process(msg("dev00", "CONFIG_CHANGED: configuration changed out-of-band"))

	if n := cm.CheckErrors(); n != 1 {
		t.Errorf("CheckErrors = %d, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(heard) != 1 || heard[0].device != "dev00" || heard[0].err == nil {
		t.Fatalf("OnCheckError heard = %+v", heard)
	}
	if len(cm.Deviations()) != 0 {
		t.Error("failed check must not record a deviation")
	}
}
