package monitor

import (
	"fmt"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/relstore"
)

var _ DeviceAPI = (*netsim.RemoteDevice)(nil)

// TestMonitoringOverTCP runs the active pipeline with devices reached over
// the management CLI rather than in process — the transport the paper's
// CLI engine actually uses.
func TestMonitoringOverTCP(t *testing.T) {
	fleet := netsim.NewFleet()
	for i := 0; i < 3; i++ {
		d, _ := fleet.AddDevice(fmt.Sprintf("dev%02d", i), netsim.Vendor1, "psw", "pop1")
		d.LoadConfig(fmt.Sprintf("hostname dev%02d\ninterface et1/1\n", i))
		d.Commit()
	}
	fleet.Wire("dev00", "et1/1", "dev01", "et1/1")
	srv, err := fleet.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sessions := map[string]*netsim.RemoteDevice{}
	resolver := func(name string) (DeviceAPI, error) {
		if d, ok := sessions[name]; ok {
			return d, nil
		}
		d, err := netsim.DialDevice(srv.Addr(), name)
		if err != nil {
			return nil, err
		}
		sessions[name] = d
		return d, nil
	}
	defer func() {
		for _, d := range sessions {
			d.Close()
		}
	}()

	db := relstore.NewDB("m")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	jm := NewJobManager(resolver)
	jm.RegisterBackend(NewTimeseriesBackend())
	jm.RegisterBackend(NewDerivedBackend(store))

	devices := []string{"dev00", "dev01", "dev02"}
	for _, spec := range []JobSpec{
		{Name: "counters", Period: time.Minute, Engine: EngineSNMP, Data: DataCounters,
			Devices: devices, Backends: []string{"timeseries"}},
		{Name: "lldp", Period: time.Minute, Engine: EngineCLI, Data: DataLLDP,
			Devices: devices, Backends: []string{"fbnet-derived"}},
		{Name: "version", Period: time.Minute, Engine: EngineThrift, Data: DataVersion,
			Devices: devices, Backends: []string{"fbnet-derived"}},
	} {
		if _, err := jm.RunOnce(spec); err != nil {
			t.Fatalf("%s over TCP: %v", spec.Name, err)
		}
	}
	if jm.Stats().Errors() != 0 {
		t.Errorf("poll errors over TCP: %d", jm.Stats().Errors())
	}
	if n, _ := store.Count("DerivedDevice"); n != 3 {
		t.Errorf("DerivedDevice = %d", n)
	}
	// LLDP collected over the wire yields the derived circuit.
	n, err := DeriveCircuits(store)
	if err != nil || n != 1 {
		t.Errorf("derived circuits over TCP = %d, %v", n, err)
	}
}
