// Package monitor implements Robotron's monitoring stage (SIGCOMM '16,
// §5.4): passive monitoring (syslog collection and classification), active
// monitoring (the Job Manager / Engines / Backends pipeline of Fig. 11),
// and config monitoring (running configs compared against Robotron's
// golden configs).
package monitor

import (
	"fmt"
	"net"
	"regexp"
	"sort"
	"strings"
	"sync"

	"github.com/robotron-net/robotron/internal/netsim"
)

// Urgency is the alert level a syslog rule assigns (Table 3).
type Urgency int

const (
	Ignored Urgency = iota // no rule matched
	Notice
	Warning
	Minor
	Major
	Critical
)

var urgencyNames = map[Urgency]string{
	Ignored: "IGNORED", Notice: "NOTICE", Warning: "WARNING",
	Minor: "MINOR", Major: "MAJOR", Critical: "CRITICAL",
}

func (u Urgency) String() string { return urgencyNames[u] }

// Rule is one regex classification rule, "maintained by network engineers"
// (§5.4.1).
type Rule struct {
	Name    string
	Pattern string
	Urgency Urgency
	// AutoRemediate, if set, is invoked for matching messages instead of
	// paging a human ("remediated automatically or manually by engineers").
	AutoRemediate func(msg netsim.SyslogMessage)

	re *regexp.Regexp
	// literal is set when the pattern contains no regex metacharacters;
	// such rules match with a substring search, which keeps classification
	// cheap even with hundreds of rules (Table 3's rule set is 719).
	literal string
}

// matches reports whether the rule matches a message text.
func (r *Rule) matches(text string) bool {
	if r.literal != "" {
		return strings.Contains(text, r.literal)
	}
	return r.re.MatchString(text)
}

// Alert is one classified, non-ignored syslog event.
type Alert struct {
	Rule    string
	Urgency Urgency
	Message netsim.SyslogMessage
}

// Classifier matches syslog messages against an ordered rule list.
type Classifier struct {
	mu    sync.RWMutex
	rules []Rule
	// counts per urgency level, for Table 3.
	counts map[Urgency]int64
	// handlers receive alerts for matched, non-ignored messages.
	handlers []func(Alert)
}

// NewClassifier returns a classifier with no rules (everything IGNORED).
func NewClassifier() *Classifier {
	return &Classifier{counts: make(map[Urgency]int64)}
}

// AddRule compiles and installs a rule; rules match in insertion order and
// the first match wins.
func (c *Classifier) AddRule(r Rule) error {
	re, err := regexp.Compile(r.Pattern)
	if err != nil {
		return fmt.Errorf("monitor: rule %q: bad pattern: %w", r.Name, err)
	}
	r.re = re
	if regexp.QuoteMeta(r.Pattern) == r.Pattern {
		r.literal = r.Pattern
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, existing := range c.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("monitor: duplicate rule name %q", r.Name)
		}
	}
	c.rules = append(c.rules, r)
	return nil
}

// MustAddRule is AddRule that panics, for static rule sets.
func (c *Classifier) MustAddRule(r Rule) {
	if err := c.AddRule(r); err != nil {
		panic(err)
	}
}

// RuleCounts returns the number of installed rules per urgency (Table 3's
// "# of rules" column).
func (c *Classifier) RuleCounts() map[Urgency]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := map[Urgency]int{}
	for _, r := range c.rules {
		out[r.Urgency]++
	}
	return out
}

// OnAlert registers a handler invoked for each matched message.
func (c *Classifier) OnAlert(h func(Alert)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers = append(c.handlers, h)
}

// Process classifies one message, updates counters, and fires handlers /
// auto-remediation. It returns the matched rule name and urgency
// (IGNORED, "" when no rule matched).
func (c *Classifier) Process(msg netsim.SyslogMessage) (string, Urgency) {
	c.mu.RLock()
	var matched *Rule
	for i := range c.rules {
		if c.rules[i].matches(msg.Text) {
			matched = &c.rules[i]
			break
		}
	}
	handlers := c.handlers
	c.mu.RUnlock()

	c.mu.Lock()
	if matched == nil {
		c.counts[Ignored]++
	} else {
		c.counts[matched.Urgency]++
	}
	c.mu.Unlock()

	if matched == nil {
		return "", Ignored
	}
	// An explicit suppression rule (Urgency Ignored) classifies the line —
	// it is counted under its rule and shadows later, noisier rules — but
	// ignored lines never alert, auto-remediate, or reach backends.
	if matched.Urgency == Ignored {
		return matched.Name, Ignored
	}
	if matched.AutoRemediate != nil {
		matched.AutoRemediate(msg)
	}
	alert := Alert{Rule: matched.Name, Urgency: matched.Urgency, Message: msg}
	for _, h := range handlers {
		h(alert)
	}
	return matched.Name, matched.Urgency
}

// Counts returns per-urgency event counts (Table 3's "# of events").
func (c *Classifier) Counts() map[Urgency]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Urgency]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of processed messages.
func (c *Classifier) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// StandardRules installs a rule set mirroring the Table 3 examples.
func StandardRules(c *Classifier) {
	for _, r := range []Rule{
		{Name: "critical-power", Pattern: `POWER_ALARM|TEMPERATURE_CRITICAL`, Urgency: Critical},
		{Name: "device-reboot", Pattern: `DEVICE_REBOOT`, Urgency: Critical},
		{Name: "linecard-removed", Pattern: `LINECARD_REMOVED`, Urgency: Major},
		{Name: "tcam-error", Pattern: `TCAM_ERROR`, Urgency: Major},
		{Name: "high-temp", Pattern: `TEMPERATURE_HIGH`, Urgency: Major},
		{Name: "tcam-exhausted", Pattern: `TCAM_EXHAUSTED`, Urgency: Minor},
		{Name: "ip-conflict", Pattern: `IP_CONFLICT`, Urgency: Minor},
		{Name: "bad-fpc", Pattern: `FPC_ERROR`, Urgency: Minor},
		{Name: "link-state", Pattern: `LINK_STATE: Interface .* changed state to down`, Urgency: Warning},
		{Name: "bgp-updown", Pattern: `BGP_SESSION: neighbor .* moved to Active`, Urgency: Warning},
		{Name: "config-rollback", Pattern: `CONFIG_ROLLBACK`, Urgency: Warning},
		{Name: "ssl-limit", Pattern: `SSL_CONN_LIMIT`, Urgency: Warning},
		{Name: "config-changed", Pattern: `CONFIG_CHANGED`, Urgency: Notice},
		{Name: "dhcp-snoop", Pattern: `DHCP_SNOOP_DENY`, Urgency: Notice},
		{Name: "mac-conflict", Pattern: `MAC_CONFLICT`, Urgency: Notice},
		{Name: "ntp-unreachable", Pattern: `NTP_UNREACHABLE`, Urgency: Notice},
	} {
		c.MustAddRule(r)
	}
}

// Collector receives syslog datagrams on a UDP socket — standing in for
// the BGP anycast address devices send to (§5.4.1) — parses them, and
// feeds the classifier. Multiple collectors can share one classifier.
type Collector struct {
	pc      net.PacketConn
	cls     *Classifier
	wg      sync.WaitGroup
	mu      sync.Mutex
	dropped int64
	closed  bool
}

// NewCollector starts a collector on addr (e.g. "127.0.0.1:0").
func NewCollector(addr string, cls *Classifier) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: collector: %w", err)
	}
	col := &Collector{pc: pc, cls: cls}
	col.wg.Add(1)
	go col.readLoop()
	return col, nil
}

// Addr returns the UDP address devices should be configured to log to.
func (col *Collector) Addr() string { return col.pc.LocalAddr().String() }

func (col *Collector) readLoop() {
	defer col.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := col.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg, err := netsim.ParseSyslog(string(buf[:n]))
		if err != nil {
			col.mu.Lock()
			col.dropped++
			col.mu.Unlock()
			continue
		}
		col.cls.Process(msg)
	}
}

// Dropped returns the number of unparseable datagrams.
func (col *Collector) Dropped() int64 {
	col.mu.Lock()
	defer col.mu.Unlock()
	return col.dropped
}

// Close stops the collector.
func (col *Collector) Close() {
	col.mu.Lock()
	if col.closed {
		col.mu.Unlock()
		return
	}
	col.closed = true
	col.mu.Unlock()
	col.pc.Close()
	col.wg.Wait()
}

// UrgencyLevels lists all levels from most to least urgent, for stable
// report rendering.
func UrgencyLevels() []Urgency {
	return []Urgency{Critical, Major, Minor, Warning, Notice, Ignored}
}

// FormatTable3 renders classifier statistics in the layout of the paper's
// Table 3.
func FormatTable3(c *Classifier) string {
	counts := c.Counts()
	rules := c.RuleCounts()
	total := c.Total()
	var b []byte
	b = fmt.Appendf(b, "%-10s %12s %12s %10s\n", "Urgency", "# of events", "Percentage", "# of rules")
	for _, u := range UrgencyLevels() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(counts[u]) / float64(total)
		}
		b = fmt.Appendf(b, "%-10s %12d %11.2f%% %10d\n", u, counts[u], pct, rules[u])
	}
	b = fmt.Appendf(b, "%-10s %12d %11.2f%% %10d\n", "Total", total, 100.0, len(sortedRuleNames(c)))
	return string(b)
}

func sortedRuleNames(c *Classifier) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, len(c.rules))
	for i, r := range c.rules {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}
