package monitor

import (
	"fmt"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/vclock"
)

func alarmFixture(t *testing.T) (*vclock.VirtualClock, *TimeseriesBackend, *fbnet.Store, *AlarmEngine) {
	t.Helper()
	vc := vclock.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	ts := NewTimeseriesBackend()
	store, err := fbnet.Open(relstore.NewDB("alarm-test"), fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return vc, ts, store, NewAlarmEngine(vc, ts, store)
}

func pushSample(ts *TimeseriesBackend, key string, at time.Time, v float64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.pushLocked(key, Sample{AtUnix: at.Unix(), Value: v})
}

func TestThresholdAlarmLifecycle(t *testing.T) {
	vc, ts, _, ae := alarmFixture(t)
	reg := telemetry.NewRegistry()
	ae.Instrument(reg)
	ae.ReplaceRules([]AlarmRule{{
		Name: "cpu-high", Kind: KindThreshold, Device: "dev1", Key: "cpu_util",
		Op: ">=", Value: 0.9, Urgency: Major,
	}})

	// No data: no alarm.
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("no data, got %d alarms", len(got))
	}
	// Breach fires immediately (PendingFor 0).
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.95)
	firing := ae.Evaluate()
	if len(firing) != 1 || firing[0].State != AlarmFiring {
		t.Fatalf("want 1 firing alarm, got %+v", firing)
	}
	if v, _ := reg.Value("robotron_alarms_firing"); v != 1 {
		t.Fatalf("firing gauge = %v, want 1", v)
	}
	// Re-evaluation deduplicates: still one alarm, fired once.
	ae.Evaluate()
	if v, _ := reg.Value("robotron_alarms_fired_total", telemetry.L("rule", "cpu-high")...); v != 1 {
		t.Fatalf("fired counter = %v, want 1 (dedup)", v)
	}
	// Clear resolves.
	vc.Advance(time.Minute)
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.2)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("after clear, got %d firing", len(got))
	}
	snap := ae.Snapshot()
	if len(snap) != 1 || snap[0].State != AlarmResolved || snap[0].ResolvedAt.IsZero() {
		t.Fatalf("want one resolved alarm, got %+v", snap)
	}
	if v, _ := reg.Value("robotron_alarms_firing"); v != 0 {
		t.Fatalf("firing gauge = %v, want 0", v)
	}
	if v, _ := reg.Value("robotron_alarms_resolved_total", telemetry.L("rule", "cpu-high")...); v != 1 {
		t.Fatalf("resolved counter = %v, want 1", v)
	}
}

func TestPendingForHoldsAlarmBack(t *testing.T) {
	vc, ts, _, ae := alarmFixture(t)
	ae.ReplaceRules([]AlarmRule{{
		Name: "cpu-high", Kind: KindThreshold, Device: "dev1", Key: "cpu_util",
		Op: ">", Value: 0.5, PendingFor: 2 * time.Minute, Urgency: Warning,
	}})
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.8)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("pending alarm fired immediately: %+v", got)
	}
	// Breach clears before PendingFor: pending silently dropped.
	vc.Advance(time.Minute)
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.1)
	ae.Evaluate()
	if snap := ae.Snapshot(); len(snap) != 0 {
		t.Fatalf("cleared pending left residue: %+v", snap)
	}
	// Breach persisting past PendingFor fires.
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.8)
	ae.Evaluate()
	vc.Advance(3 * time.Minute)
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.8)
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want 1 firing after PendingFor, got %d", len(got))
	}
}

func TestAbsenceAlarm(t *testing.T) {
	vc, ts, _, ae := alarmFixture(t)
	ae.ReplaceRules([]AlarmRule{{
		Name: "device-unreachable", Kind: KindAbsence, Device: "dev1", Key: "cpu_util",
		Window: 5 * time.Minute, Urgency: Critical,
	}})
	// A series that never reported cannot go absent.
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("absence fired with no samples: %+v", got)
	}
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.1)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("fresh sample alarmed: %+v", got)
	}
	vc.Advance(6 * time.Minute)
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want absence alarm after silence, got %d", len(got))
	}
	// Reporting again resolves it.
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.1)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("absence did not resolve: %+v", got)
	}
}

func TestFlatlineAlarm(t *testing.T) {
	vc, ts, _, ae := alarmFixture(t)
	ae.ReplaceRules([]AlarmRule{{
		Name: "flatline-octets", Kind: KindFlatline, Device: "dev1", Key: "eth1/out_octets",
		Urgency: Minor,
	}})
	pushSample(ts, "dev1/eth1/out_octets", vc.Now(), 100)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("one sample alarmed: %+v", got)
	}
	vc.Advance(time.Minute)
	pushSample(ts, "dev1/eth1/out_octets", vc.Now(), 100) // frozen counter
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want flatline alarm, got %d", len(got))
	}
	vc.Advance(time.Minute)
	pushSample(ts, "dev1/eth1/out_octets", vc.Now(), 250)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("flatline did not resolve on increase: %+v", got)
	}
}

func TestBGPStateAlarm(t *testing.T) {
	_, _, store, ae := alarmFixture(t)
	ae.ReplaceRules([]AlarmRule{{
		Name: "bgp-session-down", Kind: KindBGPState, Device: "dev1", Key: "10.0.0.2",
		Urgency: Major,
	}})
	// No Derived row: nothing observed, nothing alarmed.
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("alarmed without observation: %+v", got)
	}
	setState := func(state string) {
		if _, err := store.Mutate(func(m *fbnet.Mutation) error {
			return upsert(m, "DerivedBgpSession",
				fbnet.And(fbnet.Eq("device_name", "dev1"), fbnet.Eq("peer_addr", "10.0.0.2")),
				map[string]any{"device_name": "dev1", "peer_addr": "10.0.0.2", "family": "v4", "state": state})
		}); err != nil {
			t.Fatal(err)
		}
	}
	setState("Established")
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("established session alarmed: %+v", got)
	}
	setState("Active")
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want bgp alarm on Active, got %d", len(got))
	}
	setState("Established")
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("bgp alarm did not resolve: %+v", got)
	}
}

func TestFlapAlarm(t *testing.T) {
	vc, _, _, ae := alarmFixture(t)
	ae.ReplaceRules([]AlarmRule{{
		Name: "link-flap", Kind: KindFlap, Device: "dev1", Key: "link-state",
		Window: 10 * time.Minute, FlapCount: 3, Urgency: Warning,
	}})
	observe := func() {
		ae.ObserveAlert(Alert{Rule: "link-state", Urgency: Warning,
			Message: netsim.SyslogMessage{Host: "dev1", Time: vc.Now(), Text: "LINK_STATE: eth1 down"}})
	}
	observe()
	vc.Advance(time.Minute)
	observe()
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("two flaps alarmed below threshold: %+v", got)
	}
	vc.Advance(time.Minute)
	observe()
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want flap alarm at 3 within window, got %d", len(got))
	}
	// Outside the window the alerts age out and the alarm resolves.
	vc.Advance(15 * time.Minute)
	if got := ae.Evaluate(); len(got) != 0 {
		t.Fatalf("flap alarm did not age out: %+v", got)
	}
}

func TestCorrelationWindow(t *testing.T) {
	vc, _, store, ae := alarmFixture(t)
	ae.SetCorrelationWindow(10 * time.Minute)
	addEvent := func(kind, device string, at time.Time) {
		if _, err := store.Mutate(func(m *fbnet.Mutation) error {
			_, err := m.Create("OperationalEvent", map[string]any{
				"device_name": device, "kind": kind, "detail": kind + " on " + device,
				"urgency": "NOTICE", "at_unix": at.Unix(),
			})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One event outside the look-back, one inside.
	addEvent("config-changed", "ancient", vc.Now())
	vc.Advance(30 * time.Minute)
	addEvent("config-changed", "dev9", vc.Now().Add(-time.Minute))

	ae.ReplaceRules([]AlarmRule{{
		Name: "bgp-session-down", Kind: KindBGPState, Device: "dev1", Key: "10.0.0.2", Urgency: Major,
	}})
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		_, err := m.Create("DerivedBgpSession", map[string]any{
			"device_name": "dev1", "peer_addr": "10.0.0.2", "family": "v4", "state": "Active"})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	firing := ae.Evaluate()
	if len(firing) != 1 {
		t.Fatalf("want 1 firing, got %d", len(firing))
	}
	var sawRecent, sawAncient bool
	for _, c := range firing[0].Correlated {
		if c.Device == "dev9" {
			sawRecent = true
		}
		if c.Device == "ancient" {
			sawAncient = true
		}
	}
	if !sawRecent {
		t.Fatalf("correlation missed the in-window event: %+v", firing[0].Correlated)
	}
	if sawAncient {
		t.Fatalf("correlation included an event outside the look-back window")
	}
}

func TestTimelineMergedAndOrdered(t *testing.T) {
	vc, _, store, ae := alarmFixture(t)
	base := vc.Now()
	if _, err := store.Mutate(func(m *fbnet.Mutation) error {
		if _, err := m.Create("DesignChange", map[string]any{
			"employee_id": "e1", "ticket_id": "T1", "description": "add pop",
			"domain": "pop", "created_unix": base.Unix(),
			"num_created": int64(3), "num_modified": int64(0), "num_deleted": int64(0),
		}); err != nil {
			return err
		}
		_, err := m.Create("OperationalEvent", map[string]any{
			"device_name": "verify-gate", "kind": "verify-gate", "detail": "ok",
			"urgency": "NOTICE", "at_unix": base.Add(time.Minute).Unix(),
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ae.SetJournalSource(func() []JournalEntry {
		return []JournalEntry{{At: base.Add(2 * time.Minute), Device: "dev1", Type: "converged", Detail: "ok"}}
	})
	tl := ae.Timeline(time.Time{}, time.Time{})
	if len(tl) != 3 {
		t.Fatalf("want 3 timeline entries, got %d: %+v", len(tl), tl)
	}
	wantStages := []string{"design", "verify", "reconcile"}
	for i, e := range tl {
		if e.Stage != wantStages[i] {
			t.Fatalf("entry %d stage = %s, want %s", i, e.Stage, wantStages[i])
		}
		if i > 0 && tl[i].At.Before(tl[i-1].At) {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	// Bounded query.
	mid := ae.Timeline(base.Add(30*time.Second), base.Add(90*time.Second))
	if len(mid) != 1 || mid[0].Stage != "verify" {
		t.Fatalf("bounded timeline = %+v, want just the verify entry", mid)
	}
}

func TestReplaceRulesDropsStaleActiveAlarms(t *testing.T) {
	vc, ts, _, ae := alarmFixture(t)
	reg := telemetry.NewRegistry()
	ae.Instrument(reg)
	ae.ReplaceRules([]AlarmRule{{
		Name: "cpu-high", Kind: KindThreshold, Device: "dev1", Key: "cpu_util",
		Op: ">", Value: 0.5, Urgency: Major,
	}})
	pushSample(ts, "dev1/cpu_util", vc.Now(), 0.9)
	if got := ae.Evaluate(); len(got) != 1 {
		t.Fatalf("want 1 firing, got %d", len(got))
	}
	// The design no longer declares dev1: its alarms go with it.
	ae.ReplaceRules(nil)
	if got := ae.Firing(); len(got) != 0 {
		t.Fatalf("stale alarm survived rule replacement: %+v", got)
	}
	if v, _ := reg.Value("robotron_alarms_firing"); v != 0 {
		t.Fatalf("firing gauge = %v after rule replacement, want 0", v)
	}
}

func BenchmarkAlarmEvaluate(b *testing.B) {
	vc := vclock.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	ts := NewTimeseriesBackend()
	ae := NewAlarmEngine(vc, ts, nil)
	const devices = 256
	rules := make([]AlarmRule, 0, devices*2)
	for i := 0; i < devices; i++ {
		dev := fmt.Sprintf("dev%03d", i)
		for s := 0; s < 16; s++ {
			pushSample(ts, dev+"/cpu_util", vc.Now().Add(time.Duration(s)*time.Minute), 0.3)
			pushSample(ts, dev+"/eth1/out_octets", vc.Now().Add(time.Duration(s)*time.Minute), float64(s*1000))
		}
		rules = append(rules,
			AlarmRule{Name: "device-unreachable", Kind: KindAbsence, Device: dev,
				Key: "cpu_util", Window: time.Hour, Urgency: Critical},
			AlarmRule{Name: "flatline-octets", Kind: KindFlatline, Device: dev,
				Key: "eth1/out_octets", Urgency: Minor},
		)
	}
	ae.ReplaceRules(rules)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ae.Evaluate(); len(got) != 0 {
			b.Fatalf("unexpected alarms: %d", len(got))
		}
	}
}
