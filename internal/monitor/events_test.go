package monitor

import (
	"testing"

	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/relstore"
)

func TestRecordEventsPopulatesOperationalEvents(t *testing.T) {
	db := relstore.NewDB("m")
	store, err := fbnet.Open(db, fbnet.NewCatalog())
	if err != nil {
		t.Fatal(err)
	}
	cls := NewClassifier()
	StandardRules(cls)
	RecordEvents(cls, store)

	d := netsim.NewDevice("psw1", netsim.Vendor1, "psw", "pop1")
	d.SetSyslogSink(func(m netsim.SyslogMessage) { cls.Process(m) })
	d.LoadConfig("interface et1/1\ninterface et2/1\n")
	d.Commit()          // NOTICE: config-changed
	d.Reboot()          // CRITICAL: device-reboot
	d.RemoveLinecard(1) // MAJOR: linecard-removed (no cabled links, so no flap)

	events, err := store.Find("OperationalEvent", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("events recorded = %d, want >= 3", len(events))
	}
	byKind := map[string]int{}
	for _, e := range events {
		if e.String("device_name") != "psw1" {
			t.Errorf("event device = %q", e.String("device_name"))
		}
		byKind[e.String("kind")]++
	}
	for _, want := range []string{"config-changed", "device-reboot", "linecard-removed"} {
		if byKind[want] == 0 {
			t.Errorf("no %s event recorded (%v)", want, byKind)
		}
	}
	// Ignored noise must not be recorded.
	before, _ := store.Count("OperationalEvent")
	cls.Process(netsim.SyslogMessage{Severity: 6, Host: "psw1", App: "x", Text: "LSP change noise"})
	after, _ := store.Count("OperationalEvent")
	if after != before {
		t.Error("ignored message recorded as an event")
	}
	// Events are queryable by urgency, the §4.1.1 use case.
	criticals, err := store.Find("OperationalEvent", fbnet.Eq("urgency", "CRITICAL"))
	if err != nil {
		t.Fatal(err)
	}
	if len(criticals) != 1 {
		t.Errorf("critical events = %d", len(criticals))
	}
}
