package deploy

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// timeDeploy runs one deployment and returns its wall-clock duration.
func timeDeploy(t *testing.T, dep *Deployer, cfgs map[string]string, opts Options) time.Duration {
	t.Helper()
	start := time.Now()
	if _, err := dep.Deploy(cfgs, opts); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestParallelDeploySpeedup: a 16-device phase with a uniform commit delay
// must commit near-linearly faster through the default worker pool than
// serially (the §5.3 "scalable" requirement).
func TestParallelDeploySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	fleet, dep, _ := newTestFleet(t, 16)
	const delay = 10 * time.Millisecond
	for _, d := range fleet.Devices() {
		d.SetCommitDelay(delay)
	}
	serial := timeDeploy(t, dep, newConfigs(fleet, 2), Options{Parallelism: 1})
	parallel := timeDeploy(t, dep, newConfigs(fleet, 3), Options{}) // default: min(8, 16)
	if serial < 16*delay {
		t.Fatalf("serial run implausibly fast: %v", serial)
	}
	if parallel*4 > serial {
		t.Errorf("parallel deploy not ≥4x faster: serial=%v parallel=%v", serial, parallel)
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9003") {
			t.Errorf("%s not updated by parallel deploy", d.Name())
		}
	}
}

// TestParallelAtomicRollbackMixedSpeeds: atomic rollback must cover every
// committed device when fast and slow devices race in the pool, including
// a straggler whose commit lands after its time window.
func TestParallelAtomicRollbackMixedSpeeds(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 8)
	for i, d := range fleet.Devices() {
		if i%2 == 0 {
			d.SetCommitDelay(5 * time.Millisecond)
		}
	}
	slow, _ := fleet.Device("dev03")
	slow.SetCommitDelay(150 * time.Millisecond) // breaches the window
	cfgs := newConfigs(fleet, 2)
	_, err := dep.Deploy(cfgs, Options{
		Atomic:        true,
		Parallelism:   4,
		CommitTimeout: 40 * time.Millisecond,
		HealthCheck:   func(tg Target, intended string) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "did not finish applying") {
		t.Fatalf("want time-window error, got %v", err)
	}
	// Every device — fast committers and the late-landing straggler —
	// runs the baseline again.
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back: %q", d.Name(), cfg)
		}
	}
}

// TestNonAtomicLateCommitReported: bugfix — a non-atomic failure exit must
// settle stragglers before returning, and a commit that lands late must
// show up in the Report instead of silently landing after Deploy returns.
func TestNonAtomicLateCommitReported(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 3)
	slow, _ := fleet.Device("dev01")
	slow.SetCommitDelay(80 * time.Millisecond)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{
		Parallelism:   1, // deterministic order: dev00 commits, dev01 times out
		CommitTimeout: 25 * time.Millisecond,
		HealthCheck:   func(tg Target, intended string) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "did not finish applying") {
		t.Fatalf("want time-window error, got %v", err)
	}
	// By the time Deploy returned, the straggler's commit has settled and
	// is reported: the device really runs the new config.
	var late bool
	for _, res := range rep.Results {
		if res.Device == "dev01" && res.Action == "late-commit" {
			late = true
		}
	}
	if !late {
		t.Errorf("late commit of dev01 not reported: %+v", rep.Results)
	}
	cfg, _ := slow.RunningConfig()
	if !strings.Contains(cfg, "9002") {
		t.Errorf("dev01 late commit should have landed before return: %q", cfg)
	}
}

// TestNonAtomicConfirmGraceFailureReturnsPending: bugfix — when a
// non-atomic commit-confirmed deployment fails mid-rollout, the devices
// that did commit provisionally must come back in Report.Pending (armed),
// so the operator can confirm the partial progress or roll everything
// back; previously emulated-commit devices were stranded committed while
// native ones auto-reverted.
func TestNonAtomicConfirmGraceFailureReturnsPending(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	d3, _ := fleet.Device("dev03")
	rep, err := dep.Deploy(cfgs, Options{
		ConfirmGrace: time.Minute,
		Parallelism:  1,
		Review: func(device, diff string) bool {
			if device == "dev03" {
				d3.SetDown(true) // dies after review, before its commit
			}
			return true
		},
		HealthCheck: func(tg Target, intended string) error { return nil },
	})
	if err == nil {
		t.Fatal("deployment should fail on dev03")
	}
	if rep.Pending == nil {
		t.Fatal("failed commit-confirmed deployment must return the pending set")
	}
	got := rep.Pending.Devices()
	if len(got) != 3 {
		t.Fatalf("pending devices = %v, want dev00..dev02", got)
	}
	// Both vendors (emulated and native confirm) roll back together.
	if err := rep.Pending.Rollback(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dev00", "dev01", "dev02"} {
		d, _ := fleet.Device(name)
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back from provisional commit: %q", name, cfg)
		}
		if d.ConfirmPending() {
			t.Errorf("%s native rollback timer still armed", name)
		}
	}
}

// TestNonAtomicConfirmGraceHealthGateArmsPending: the same guarantee on
// the health-gate failure exit — unconfirmed commits auto-expire instead
// of leaving emulated devices permanently committed.
func TestNonAtomicConfirmGraceHealthGateArmsPending(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{
		ConfirmGrace: 40 * time.Millisecond,
		Phases:       []Phase{{Name: "canary", Percent: 50}, {Name: "rest"}},
		HealthCheck: func(tg Target, intended string) error {
			return errors.New("synthetic regression")
		},
	})
	if err == nil || !strings.Contains(err.Error(), "halted") {
		t.Fatalf("want halt error, got %v", err)
	}
	if rep.Pending == nil {
		t.Fatal("halted commit-confirmed deployment must return the pending set")
	}
	// Left alone, the grace timer rolls every provisional commit back.
	deadline := time.Now().Add(2 * time.Second)
	for !rep.Pending.Settled() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, name := range rep.Pending.Devices() {
		d, _ := fleet.Device(name)
		for d.ConfirmPending() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not auto-rolled-back after halt + expiry: %q", name, cfg)
		}
	}
}

// TestDryrunDiscardsCandidate: bugfix — Dryrun must not leave the
// candidate config staged on the device, where an unrelated later
// Commit() would silently activate it.
func TestDryrunDiscardsCandidate(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	if _, err := dep.Dryrun(newConfigs(fleet, 2), Options{}); err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		if err := d.Commit(); err == nil {
			t.Errorf("%s: commit after dryrun should fail (no candidate), but it committed the abandoned candidate", d.Name())
		}
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s running config changed by dryrun: %q", d.Name(), cfg)
		}
	}
}

// TestReviewRejectionDiscardsCandidates: the same leak on the Deploy
// review path — a rejected deployment must leave no device with a staged
// candidate from the preceding dryrun pass.
func TestReviewRejectionDiscardsCandidates(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 3)
	_, err := dep.Deploy(newConfigs(fleet, 2), Options{
		Review: func(device, diff string) bool { return device != "dev02" },
	})
	if !errors.Is(err, ErrReviewRejected) {
		t.Fatalf("want ErrReviewRejected, got %v", err)
	}
	// dev00/dev01 passed review before the abort; their candidates must
	// be gone too.
	for _, d := range fleet.Devices() {
		if err := d.Commit(); err == nil {
			t.Errorf("%s still had a staged candidate after rejected review", d.Name())
		}
	}
}

// TestPendingConfirmExpireRace: Confirm racing the grace-expiry timer must
// settle exactly once — either the confirmation wins (configs stay) or the
// expiry wins (configs roll back), never a half of each. Run under -race.
func TestPendingConfirmExpireRace(t *testing.T) {
	for i := 0; i < 25; i++ {
		fleet, dep, _ := newTestFleet(t, 2)
		cfgs := newConfigs(fleet, 2)
		rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		outcomes := make([]error, 3)
		for j := 0; j < 3; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				if j == 2 {
					outcomes[j] = rep.Pending.Rollback()
				} else {
					outcomes[j] = rep.Pending.Confirm()
				}
			}(j)
		}
		wg.Wait()
		wins := 0
		for _, err := range outcomes {
			if err == nil {
				wins++
			}
		}
		if wins > 1 {
			t.Fatalf("iteration %d: %d settlement operations succeeded, want at most 1", i, wins)
		}
		if !rep.Pending.Settled() {
			t.Fatalf("iteration %d: pending not settled after race", i)
		}
		// A Confirm can win the settle race yet lose against a
		// device-native timer that fired in the same instant; the
		// operator sees "confirmation failed" and must intervene. The
		// final state of that boundary case is indeterminate by design.
		boundary := false
		for _, err := range outcomes {
			if err != nil && strings.Contains(err.Error(), "confirmation failed") {
				boundary = true
			}
		}
		if boundary {
			continue
		}
		// Wait for any native device timers to quiesce before asserting
		// a coherent final state: both devices on 9001 or both on 9002.
		deadline := time.Now().Add(2 * time.Second)
		d1, _ := fleet.Device("dev01")
		for d1.ConfirmPending() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		confirmed := false
		for j, err := range outcomes {
			if err == nil && j != 2 {
				confirmed = true
			}
		}
		rolledBack := !confirmed // expiry or explicit rollback won
		for _, d := range fleet.Devices() {
			cfg, _ := d.RunningConfig()
			switch {
			case rolledBack && !strings.Contains(cfg, "9001"):
				t.Fatalf("iteration %d: %s kept new config after rollback won: %q", i, d.Name(), cfg)
			case confirmed && !strings.Contains(cfg, "9002"):
				t.Fatalf("iteration %d: %s lost config after confirm won: %q", i, d.Name(), cfg)
			}
		}
	}
}

// TestParallelDryrunAndProvision: the pool-threaded Dryrun and
// InitialProvision paths stay correct for a wide fan-out.
func TestParallelDryrunAndProvision(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 24)
	cfgs := newConfigs(fleet, 2)
	diffs, err := dep.Dryrun(cfgs, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 24 {
		t.Fatalf("diffs = %d", len(diffs))
	}
	rep, err := dep.InitialProvision(cfgs, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 24 || len(rep.Failed()) != 0 {
		t.Fatalf("results = %d, failed = %d", len(rep.Results), len(rep.Failed()))
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if cfg != cfgs[d.Name()] {
			t.Errorf("%s not provisioned", d.Name())
		}
	}
}

// TestParallelCommitConfirmFleetwide exercises the pool and the shared
// Pending set together on a larger fleet under the race detector.
func TestParallelCommitConfirmFleetwide(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 32)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: time.Minute, Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Pending.Devices()); got != 32 {
		t.Fatalf("pending devices = %d", got)
	}
	if err := rep.Pending.Confirm(); err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9002") {
			t.Errorf("%s lost confirmed config", d.Name())
		}
	}
}

var _ Target = (*netsim.Device)(nil) // parallel engine contract includes DiscardCandidate
