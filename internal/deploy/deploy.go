// Package deploy implements Robotron's config deployment stage (SIGCOMM
// '16, §5.3): agile, scalable, safe rollout of generated configs to
// network devices while minimizing the risk of network outages.
//
// Two scenarios are supported. Initial provisioning (§5.3.1) erases and
// replaces the full config of drained devices, then validates connectivity.
// Incremental updates (§5.3.2) change running devices and compose four
// safety mechanisms:
//
//   - Dryrun mode: diffs between new and running configs are produced —
//     natively on platforms that support it, by before/after comparison on
//     those that don't — and presented for human review.
//   - Atomic mode: multi-device changes commit as one transaction; any
//     device failure rolls back every device already committed.
//   - Phased mode: devices update in engineer-specified phases (by
//     percentage, site, role) with a health gate between phases; a failed
//     gate halts the deployment and notifies the engineer.
//   - Human confirmation: commits are provisional for a grace period and
//     roll back automatically unless confirmed (device-native where
//     available, emulated by the deployer elsewhere).
//
// Concurrency model: devices *within* a phase commit concurrently through
// a bounded worker pool (Options.Parallelism), while phases themselves
// remain strictly ordered behind the health gate. A commit that outlives
// Options.CommitTimeout is reported as failed by its worker, but the
// in-flight commit keeps running; the pool drains every such straggler
// before any rollback or return, so a late-landing commit is always either
// rolled back (atomic) or reported in the Report (non-atomic) — never
// silently left on the device.
package deploy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// Target is the management session surface the deployer needs from a
// device; *netsim.Device implements it.
type Target interface {
	Name() string
	Vendor() netsim.Vendor
	Role() string
	Site() string
	Reachable() bool
	TrafficLoad() float64
	RunningConfig() (string, error)
	LoadConfig(string) error
	DiscardCandidate() error
	DryrunDiff() (string, error)
	Commit() error
	CommitConfirmed(grace time.Duration) error
	Confirm() error
	Rollback() error
	EraseConfig() error
}

var _ Target = (*netsim.Device)(nil)

// Resolver maps a device name to a management session.
type Resolver func(name string) (Target, error)

// FleetResolver resolves against a netsim fleet.
func FleetResolver(f *netsim.Fleet) Resolver {
	return func(name string) (Target, error) {
		d, ok := f.Device(name)
		if !ok {
			return nil, fmt.Errorf("deploy: unknown device %q", name)
		}
		return d, nil
	}
}

// Phase selects a subset of devices for one rollout step: the paper's
// "permutation of percentage/region/role of devices to be updated in each
// phase". Zero-valued filters match everything; Percent 0 means 100.
type Phase struct {
	Name    string
	Percent int
	Role    string
	Site    string
}

// Options control one deployment.
type Options struct {
	// Atomic commits all devices as one transaction with rollback on any
	// failure.
	Atomic bool
	// Phases splits the rollout; empty means a single phase of everything.
	// Devices matched by no phase form a final implicit phase.
	Phases []Phase
	// Parallelism bounds how many devices of one phase commit
	// concurrently. 0 picks the default min(8, phase size); 1 restores
	// the serial engine. Phases always run strictly in order regardless.
	Parallelism int
	// ConfirmGrace > 0 makes commits provisional: the returned Pending
	// must be confirmed within the grace period or every device rolls
	// back.
	ConfirmGrace time.Duration
	// CommitTimeout bounds how long one device may take to apply its
	// config; a device that "cannot finish applying the config within a
	// given time window" fails the deployment (and, in atomic mode, rolls
	// the whole transaction back once the straggler settles). 0 disables.
	CommitTimeout time.Duration
	// Review, if set, receives each device's diff before anything is
	// committed; returning false aborts the deployment ("the user is
	// presented with a diff ... to verify all changes").
	Review func(device, diff string) bool
	// HealthCheck gates phased rollouts; nil uses the default check
	// (device reachable, running config matches intent).
	HealthCheck func(t Target, intended string) error
	// Retry, if set, runs every device commit under a classified retry
	// budget (see RetryPolicy): transient errors back off and retry,
	// ambiguous commit errors resolve by running-config readback,
	// permanent errors fail fast. Nil preserves single-shot commits.
	Retry *RetryPolicy
	// Notify receives progress and failure notifications ("engineers will
	// get a notification from Robotron upon failures"). Notifications may
	// originate from worker goroutines mid-phase, but calls are
	// serialized: Notify is never invoked concurrently with itself.
	Notify func(format string, args ...any)
	// Span, if set, is the parent trace span for this deployment: Deploy
	// records one "phase" child per rollout phase and one "commit" child
	// per device commit under it. Nil disables tracing (all span methods
	// no-op on nil).
	Span *telemetry.Span
}

// workers resolves the pool size for a work list of n devices.
func (o *Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = 8
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// notifier wraps Options.Notify behind a mutex so callbacks from
// concurrent workers never overlap.
type notifier struct {
	mu sync.Mutex
	fn func(format string, args ...any)
}

func (n *notifier) notify(format string, args ...any) {
	if n.fn == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fn(format, args...)
}

// Result reports the outcome for one device.
type Result struct {
	Device  string
	Action  string // "committed", "rolled-back", "skipped", "erased+provisioned", "late-commit"
	Err     error
	Added   int
	Removed int
}

// Report is the outcome of one deployment.
type Report struct {
	Results []Result
	// Pending is non-nil when ConfirmGrace was set and at least one
	// device committed provisionally: call Confirm to make the deployment
	// permanent or Rollback to abandon it; doing neither rolls back
	// automatically when the grace period expires. On a failed non-atomic
	// deployment Pending holds the devices that did commit, so partial
	// progress can still be confirmed or uniformly abandoned.
	Pending *Pending
}

// Failed returns the results that carry errors.
func (r Report) Failed() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// Deployer executes deployments against a device fleet.
type Deployer struct {
	Resolve Resolver

	met deployMetrics
}

// deployMetrics are the deployer's registry bindings; the zero value
// (all nil) records nothing, so an uninstrumented Deployer pays only
// nil-receiver checks.
type deployMetrics struct {
	commitOK     *telemetry.Counter
	commitFail   *telemetry.Counter
	rollbacks    *telemetry.Counter
	phaseSec     *telemetry.Histogram
	commitSec    *telemetry.Histogram
	retries      *telemetry.Counter
	backoffSec   *telemetry.Histogram
	ambigApplied *telemetry.Counter
	ambigRetried *telemetry.Counter
}

func bindDeployMetrics(reg *telemetry.Registry) deployMetrics {
	reg.Help("robotron_deploy_commits_total", "device commit attempts by result")
	reg.Help("robotron_deploy_rollbacks_total", "device rollbacks performed (atomic failure, health gate, grace expiry, explicit)")
	reg.Help("robotron_deploy_phase_seconds", "wall time of each deployment phase")
	reg.Help("robotron_deploy_commit_seconds", "wall time of each device commit attempt")
	reg.Help("robotron_deploy_retries_total", "device operation retries after transient or ambiguous errors")
	reg.Help("robotron_deploy_retry_backoff_seconds", "backoff sleeps taken before retries")
	reg.Help("robotron_deploy_ambiguous_resolutions_total", "ambiguous commit errors resolved by running-config readback, by outcome")
	return deployMetrics{
		commitOK:     reg.Counter("robotron_deploy_commits_total", telemetry.Label{Key: "result", Value: "ok"}),
		commitFail:   reg.Counter("robotron_deploy_commits_total", telemetry.Label{Key: "result", Value: "failed"}),
		rollbacks:    reg.Counter("robotron_deploy_rollbacks_total"),
		phaseSec:     reg.Histogram("robotron_deploy_phase_seconds"),
		commitSec:    reg.Histogram("robotron_deploy_commit_seconds"),
		retries:      reg.Counter("robotron_deploy_retries_total"),
		backoffSec:   reg.Histogram("robotron_deploy_retry_backoff_seconds"),
		ambigApplied: reg.Counter("robotron_deploy_ambiguous_resolutions_total", telemetry.Label{Key: "outcome", Value: "applied"}),
		ambigRetried: reg.Counter("robotron_deploy_ambiguous_resolutions_total", telemetry.Label{Key: "outcome", Value: "retried"}),
	}
}

// Instrument binds the deployer's commit/rollback counters and latency
// histograms to reg. Instrument(nil) detaches them again.
func (d *Deployer) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		d.met = deployMetrics{}
		return
	}
	d.met = bindDeployMetrics(reg)
}

// NewDeployer returns a deployer using the given resolver.
func NewDeployer(r Resolver) *Deployer { return &Deployer{Resolve: r} }

// ErrDrainRequired is returned by initial provisioning for devices still
// carrying traffic ("network devices must be completely drained").
var ErrDrainRequired = errors.New("deploy: device must be drained before initial provisioning")

// ErrReviewRejected is returned when the human reviewer declines a diff.
var ErrReviewRejected = errors.New("deploy: diff review rejected by operator")

// resolveAll maps every config key to a management session up front, so
// worker pools never call the resolver concurrently (resolvers may cache
// sessions without locking).
func (d *Deployer) resolveAll(configs map[string]string) (map[string]Target, error) {
	targets := make(map[string]Target, len(configs))
	for _, name := range sortedKeys(configs) {
		t, err := d.Resolve(name)
		if err != nil {
			return nil, err
		}
		targets[name] = t
	}
	return targets, nil
}

// runPool feeds names to a bounded worker pool running fn. Dispatch stops
// early once abort returns true; already-dispatched work always finishes.
func runPool(names []string, workers int, abort func() bool, fn func(name string)) {
	work := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				fn(name)
			}
		}()
	}
	for _, name := range names {
		if abort != nil && abort() {
			break
		}
		work <- name
	}
	close(work)
	wg.Wait()
}

// InitialProvision erases and installs configs on clean (drained) devices,
// then validates basic connectivity (§5.3.1). Devices provision
// concurrently through the worker pool; on the first failure no further
// devices are started, in-flight ones finish and are reported.
func (d *Deployer) InitialProvision(configs map[string]string, opts Options) (Report, error) {
	var rep Report
	nf := &notifier{fn: opts.Notify}
	names := sortedKeys(configs)
	targets, err := d.resolveAll(configs)
	if err != nil {
		return rep, err
	}
	// Drain check first: fail before touching anything.
	for _, name := range names {
		if t := targets[name]; t.TrafficLoad() > 0 {
			return rep, fmt.Errorf("%w: %s carries traffic (load %.2f)", ErrDrainRequired, name, t.TrafficLoad())
		}
	}
	var (
		mu       sync.Mutex
		byName   = make(map[string]Result, len(names))
		provOK   = 0
		hadError = false
	)
	runPool(names, opts.workers(len(names)),
		func() bool {
			mu.Lock()
			defer mu.Unlock()
			return hadError
		},
		func(name string) {
			// provisionOne is idempotent end to end (erase + load +
			// commit + verify), so transient and ambiguous transport
			// faults alike are safe to retry blindly.
			prov := func() error { return provisionOne(targets[name], configs[name]) }
			var err error
			if opts.Retry != nil {
				err = retryIdempotent(*opts.Retry, name, d.met, prov)
			} else {
				err = prov()
			}
			res := Result{Device: name, Action: "erased+provisioned", Err: err}
			res.Added = confdiff.Compute("", configs[name]).Stats(true).Added
			mu.Lock()
			byName[name] = res
			if err != nil {
				hadError = true
			} else {
				provOK++
			}
			done := provOK
			mu.Unlock()
			if err != nil {
				nf.notify("initial provisioning failed on %s: %v", name, err)
			} else {
				nf.notify("initial provisioning: %d/%d device(s) provisioned", done, len(names))
			}
		})
	var firstErr error
	for _, name := range names {
		res, attempted := byName[name]
		if !attempted {
			continue
		}
		rep.Results = append(rep.Results, res)
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
	}
	return rep, firstErr
}

// provisionOne erases, installs, and validates one device.
func provisionOne(t Target, cfg string) error {
	if err := t.EraseConfig(); err != nil {
		return err
	}
	if err := t.LoadConfig(cfg); err != nil {
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	// Basic validation: device reachable and running the config.
	if !t.Reachable() {
		return fmt.Errorf("deploy: %s unreachable after provisioning", t.Name())
	}
	running, err := t.RunningConfig()
	if err != nil {
		return err
	}
	if running != cfg {
		return fmt.Errorf("deploy: %s running config does not match provisioned config", t.Name())
	}
	return nil
}

// Dryrun produces the per-device diff between the new configs and the
// running configs without committing anything. Platforms with native
// dryrun (Vendor2) are asked directly — catching "most errors from invalid
// configurations and vendor bugs" — while the rest get an emulated diff.
// Devices are diffed concurrently through the worker pool.
func (d *Deployer) Dryrun(configs map[string]string, opts Options) (map[string]string, error) {
	names := sortedKeys(configs)
	targets, err := d.resolveAll(configs)
	if err != nil {
		return nil, err
	}
	var (
		mu       sync.Mutex
		out      = make(map[string]string, len(names))
		errs     = make(map[string]error)
		hadError = false
	)
	runPool(names, opts.workers(len(names)),
		func() bool {
			mu.Lock()
			defer mu.Unlock()
			return hadError
		},
		func(name string) {
			diff, err := d.dryrunOne(targets[name], configs[name])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[name] = err
				hadError = true
				return
			}
			out[name] = diff
		})
	for _, name := range names {
		if err := errs[name]; err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dryrunOne loads the candidate, renders its diff, and always discards the
// candidate again: the staged config exists only for the diff, and leaving
// it behind would let an unrelated later Commit() silently activate it
// (e.g. after the reviewer rejected this very diff).
func (d *Deployer) dryrunOne(t Target, newCfg string) (string, error) {
	if err := t.LoadConfig(newCfg); err != nil {
		return "", fmt.Errorf("deploy: %s rejected candidate config: %w", t.Name(), err)
	}
	defer func() { _ = t.DiscardCandidate() }()
	native, err := t.DryrunDiff()
	switch {
	case err == nil:
		return native, nil
	case errors.Is(err, netsim.ErrNotSupported):
		// Emulated diff for platforms without native dryrun.
		running, err := t.RunningConfig()
		if err != nil {
			return "", err
		}
		return confdiff.Compute(running, newCfg).Unified(3), nil
	default:
		return "", err
	}
}

// straggler is a device whose commit outlived the time window; its
// in-flight result must settle before any rollback or return is safe.
type straggler struct {
	name string
	done <-chan error
}

// phaseOutcome is what one phase's worker pool produced.
type phaseOutcome struct {
	results    []Result    // per attempted device, in phase order
	stragglers []straggler // commits still in flight after their window
	failedDev  string      // first failing device in phase order
	failedErr  error
}

// Deploy performs an incremental update of the given device configs with
// the safety mechanisms selected in opts.
func (d *Deployer) Deploy(configs map[string]string, opts Options) (Report, error) {
	var rep Report
	nf := &notifier{fn: opts.Notify}
	targets, err := d.resolveAll(configs)
	if err != nil {
		return rep, err
	}
	// Dryrun + human review before any commit; kept serial so the
	// reviewer sees devices in a stable order. Dryrun and readback are
	// idempotent, so under a retry policy transient and ambiguous
	// session errors alike just retry.
	withRetry := func(name string, op func() error) error {
		if opts.Retry == nil {
			return op()
		}
		return retryIdempotent(*opts.Retry, name, d.met, op)
	}
	diffStats := make(map[string]confdiff.Stats, len(configs))
	for _, name := range sortedKeys(configs) {
		t := targets[name]
		var diff, running string
		if err := withRetry(name, func() (err error) {
			diff, err = d.dryrunOne(t, configs[name])
			return err
		}); err != nil {
			return rep, err
		}
		if err := withRetry(name, func() (err error) {
			running, err = t.RunningConfig()
			return err
		}); err != nil {
			return rep, err
		}
		diffStats[name] = confdiff.Compute(running, configs[name]).Stats(true)
		if opts.Review != nil && !opts.Review(name, diff) {
			nf.notify("deployment aborted: %s diff rejected by reviewer", name)
			return rep, fmt.Errorf("%w (device %s)", ErrReviewRejected, name)
		}
	}
	phases := partitionPhases(targets, opts.Phases)
	pending := &Pending{notify: nf.notify, rollbacks: d.met.rollbacks}
	committed := make([]string, 0, len(configs)) // commit-completion order

	// settle drains every straggler's in-flight commit and returns the
	// devices whose late commit landed after all.
	settle := func(ss []straggler) []string {
		var late []string
		for _, s := range ss {
			if err := <-s.done; err == nil {
				late = append(late, s.name)
			}
		}
		return late
	}
	rollbackAll := func() {
		if opts.ConfirmGrace > 0 {
			// Commit-confirmed devices are tracked by the pending set,
			// which also disarms device-native rollback timers.
			_ = pending.Rollback()
			for i := len(committed) - 1; i >= 0; i-- {
				rep.Results = append(rep.Results, Result{Device: committed[i], Action: "rolled-back"})
			}
			return
		}
		for i := len(committed) - 1; i >= 0; i-- {
			name := committed[i]
			if err := targets[name].Rollback(); err != nil {
				nf.notify("rollback of %s failed: %v", name, err)
			} else {
				d.met.rollbacks.Inc()
				rep.Results = append(rep.Results, Result{Device: name, Action: "rolled-back"})
			}
		}
	}
	// armPartial hands a failed non-atomic deployment's provisional
	// commits back to the operator: confirm the partial progress or let
	// the grace timer roll every device (native and emulated alike) back.
	// Without this, emulated-commit devices would stay committed forever
	// while native ones auto-revert, leaving the fleet divergent.
	armPartial := func() {
		if opts.ConfirmGrace <= 0 || len(pending.Devices()) == 0 {
			return
		}
		pending.arm(opts.ConfirmGrace)
		rep.Pending = pending
		nf.notify("deployment failed with %d provisional commit(s): confirm or roll back within %v, else all roll back automatically",
			len(pending.Devices()), opts.ConfirmGrace)
	}

	for pi, phase := range phases {
		workers := opts.workers(len(phase.devices))
		nf.notify("phase %d/%d (%s): %d device(s), parallelism %d", pi+1, len(phases), phase.name, len(phase.devices), workers)
		psp := opts.Span.Child("phase")
		psp.SetAttr("phase", phase.name)
		psp.SetAttrInt("devices", int64(len(phase.devices)))
		phaseStart := time.Now()
		out := d.runPhase(phase, targets, configs, diffStats, opts, pending, nf, &committed, workers, pi+1, len(phases), psp)
		d.met.phaseSec.ObserveSince(phaseStart)
		rep.Results = append(rep.Results, out.results...)
		if out.failedErr != nil {
			psp.SetAttr("result", "failed")
			psp.End()
			// Settle stragglers on *every* failure exit — non-atomic
			// included — so no commit can land after Deploy returns.
			late := settle(out.stragglers)
			if opts.Atomic {
				committed = append(committed, late...)
				nf.notify("atomic deployment: rolling back %d committed device(s)", len(committed))
				rollbackAll()
				return rep, fmt.Errorf("deploy: atomic deployment failed on %s: %w", out.failedDev, out.failedErr)
			}
			for _, name := range late {
				nf.notify("straggler %s finished committing after the window; device is committed", name)
				rep.Results = append(rep.Results, Result{Device: name, Action: "late-commit"})
			}
			armPartial()
			return rep, fmt.Errorf("deploy: deployment failed on %s: %w", out.failedDev, out.failedErr)
		}
		// Health gate: "Robotron monitors metrics to track the progress of
		// each phase and only continues deployment if the previous phase
		// is successful."
		check := opts.HealthCheck
		if check == nil {
			check = defaultHealthCheck
		}
		for _, name := range phase.devices {
			if err := withRetry(name, func() error { return check(targets[name], configs[name]) }); err != nil {
				nf.notify("phase %d health gate failed on %s: %v — halting deployment", pi+1, name, err)
				psp.SetAttr("result", "unhealthy")
				psp.End()
				if opts.Atomic {
					rollbackAll()
					return rep, fmt.Errorf("deploy: atomic deployment health check failed on %s: %w", name, err)
				}
				armPartial()
				return rep, fmt.Errorf("deploy: phase %d halted: %s unhealthy: %w", pi+1, name, err)
			}
		}
		psp.SetAttr("result", "ok")
		psp.End()
	}
	if opts.ConfirmGrace > 0 {
		pending.arm(opts.ConfirmGrace)
		rep.Pending = pending
	}
	return rep, nil
}

// runPhase commits one phase's devices through a bounded worker pool.
// committed gains successfully committed devices in completion order; the
// caller owns rollback and straggler settlement.
func (d *Deployer) runPhase(phase phaseSet, targets map[string]Target, configs map[string]string,
	diffStats map[string]confdiff.Stats, opts Options, pending *Pending, nf *notifier,
	committed *[]string, workers, phaseNum, phaseCount int, phaseSpan *telemetry.Span) phaseOutcome {

	var (
		mu         sync.Mutex
		byName     = make(map[string]Result, len(phase.devices))
		stragglers []straggler
		aborted    = false
		okCount    = 0
	)
	// commitWithDeadline runs the commit, enforcing the per-device time
	// window inside the worker itself: on timeout the worker reports
	// failure while the in-flight commit keeps running on its own
	// goroutine, handed back as a straggler to drain later.
	commit := func(t Target, cfg string) error {
		if opts.Retry != nil {
			return commitOneRetry(t, cfg, opts.ConfirmGrace, pending, *opts.Retry, d.met, nf)
		}
		return commitOne(t, cfg, opts.ConfirmGrace, pending)
	}
	commitWithDeadline := func(t Target, cfg string) (error, <-chan error) {
		if opts.CommitTimeout <= 0 {
			return commit(t, cfg), nil
		}
		done := make(chan error, 1)
		go func() { done <- commit(t, cfg) }()
		timer := time.NewTimer(opts.CommitTimeout)
		defer timer.Stop()
		select {
		case err := <-done:
			return err, nil
		case <-timer.C:
			return fmt.Errorf("deploy: %s did not finish applying within %v", t.Name(), opts.CommitTimeout), done
		}
	}
	runPool(phase.devices, workers,
		func() bool {
			mu.Lock()
			defer mu.Unlock()
			return aborted
		},
		func(name string) {
			csp := phaseSpan.Child("commit")
			csp.SetAttr("device", name)
			commitStart := time.Now()
			err, inflight := commitWithDeadline(targets[name], configs[name])
			d.met.commitSec.ObserveSince(commitStart)
			if err != nil {
				d.met.commitFail.Inc()
				csp.SetAttr("error", err.Error())
			} else {
				d.met.commitOK.Inc()
			}
			csp.End()
			stats := diffStats[name]
			res := Result{Device: name, Action: "committed", Err: err, Added: stats.Added, Removed: stats.Removed}
			if err == nil {
				mu.Lock()
				*committed = append(*committed, name)
				mu.Unlock()
			}
			mu.Lock()
			byName[name] = res
			if err != nil {
				aborted = true
				if inflight != nil {
					stragglers = append(stragglers, straggler{name: name, done: inflight})
				}
			} else {
				okCount++
			}
			progress := okCount
			mu.Unlock()
			if err != nil {
				nf.notify("commit failed on %s: %v", name, err)
			} else {
				nf.notify("phase %d/%d (%s): %d/%d committed", phaseNum, phaseCount, phase.name, progress, len(phase.devices))
			}
		})
	out := phaseOutcome{stragglers: stragglers}
	for _, name := range phase.devices {
		res, attempted := byName[name]
		if !attempted {
			continue
		}
		out.results = append(out.results, res)
		if res.Err != nil && out.failedErr == nil {
			out.failedDev, out.failedErr = name, res.Err
		}
	}
	return out
}

// commitOne commits one device, provisionally when grace > 0. Vendor2
// uses the device's native commit-confirmed; other platforms are emulated
// by the deployer's rollback timer.
func commitOne(t Target, cfg string, grace time.Duration, pending *Pending) error {
	if err := t.LoadConfig(cfg); err != nil {
		return err
	}
	if grace <= 0 {
		return t.Commit()
	}
	if err := t.CommitConfirmed(grace); err == nil {
		pending.add(t, true)
		return nil
	} else if !errors.Is(err, netsim.ErrNotSupported) {
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	pending.add(t, false)
	return nil
}

func defaultHealthCheck(t Target, intended string) error {
	if !t.Reachable() {
		return fmt.Errorf("device unreachable")
	}
	running, err := t.RunningConfig()
	if err != nil {
		return err
	}
	if running != intended {
		return fmt.Errorf("running config deviates from intent")
	}
	return nil
}

// phaseSet is a resolved phase: name + member devices.
type phaseSet struct {
	name    string
	devices []string
}

// partitionPhases assigns every device to exactly one phase, in order;
// unmatched devices form a trailing implicit phase.
func partitionPhases(targets map[string]Target, phases []Phase) []phaseSet {
	remaining := sortedKeys(targets)
	if len(phases) == 0 {
		return []phaseSet{{name: "all", devices: remaining}}
	}
	var out []phaseSet
	taken := map[string]bool{}
	for i, p := range phases {
		var matching []string
		for _, name := range remaining {
			if taken[name] {
				continue
			}
			t := targets[name]
			if p.Role != "" && t.Role() != p.Role {
				continue
			}
			if p.Site != "" && t.Site() != p.Site {
				continue
			}
			matching = append(matching, name)
		}
		pct := p.Percent
		if pct <= 0 || pct > 100 {
			pct = 100
		}
		n := (len(matching)*pct + 99) / 100
		selected := matching[:min(n, len(matching))]
		for _, name := range selected {
			taken[name] = true
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase-%d", i+1)
		}
		if len(selected) > 0 {
			out = append(out, phaseSet{name: name, devices: selected})
		}
	}
	var rest []string
	for _, name := range remaining {
		if !taken[name] {
			rest = append(rest, name)
		}
	}
	if len(rest) > 0 {
		out = append(out, phaseSet{name: "final", devices: rest})
	}
	return out
}

// Pending is a deployment awaiting human confirmation (§5.3.2): "a final
// confirmation must be provided during the grace period otherwise
// Robotron will rollback the changes." Safe for concurrent use: the
// worker pool adds devices while Confirm/Rollback/expiry race to settle.
type Pending struct {
	notify    func(string, ...any)
	rollbacks *telemetry.Counter // nil no-op when the deployer is uninstrumented

	mu      sync.Mutex
	native  []Target // devices with device-native commit-confirmed
	emul    []Target // devices whose rollback the deployer emulates
	timer   *time.Timer
	settled bool
}

func (p *Pending) add(t Target, native bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if native {
		p.native = append(p.native, t)
	} else {
		p.emul = append(p.emul, t)
	}
}

func (p *Pending) arm(grace time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timer = time.AfterFunc(grace, p.expire)
}

// Devices returns the names of devices pending confirmation.
func (p *Pending) Devices() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, t := range p.native {
		out = append(out, t.Name())
	}
	for _, t := range p.emul {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// Confirm finalizes the deployment on every device.
func (p *Pending) Confirm() error {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return fmt.Errorf("deploy: deployment already settled")
	}
	p.settled = true
	if p.timer != nil {
		p.timer.Stop()
	}
	native := append([]Target(nil), p.native...)
	p.mu.Unlock()
	var errs []string
	for _, t := range native {
		if err := t.Confirm(); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", t.Name(), err))
		}
	}
	// Emulated devices are already committed permanently; stopping the
	// timer is the confirmation.
	if len(errs) > 0 {
		return fmt.Errorf("deploy: confirmation failed: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Rollback abandons the deployment immediately on every device.
func (p *Pending) Rollback() error {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return fmt.Errorf("deploy: deployment already settled")
	}
	p.settled = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
	p.rollbackAll()
	return nil
}

// expire fires when the grace period lapses without confirmation.
func (p *Pending) expire() {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return
	}
	p.settled = true
	emul := append([]Target(nil), p.emul...)
	p.mu.Unlock()
	if p.notify != nil {
		p.notify("grace period expired without confirmation: rolling back")
	}
	// Native devices roll back on their own; the deployer reverts the rest.
	for _, t := range emul {
		if err := t.Rollback(); err != nil {
			if p.notify != nil {
				p.notify("emulated rollback of %s failed: %v", t.Name(), err)
			}
		} else {
			p.rollbacks.Inc()
		}
	}
}

func (p *Pending) rollbackAll() {
	p.mu.Lock()
	native := append([]Target(nil), p.native...)
	emul := append([]Target(nil), p.emul...)
	p.mu.Unlock()
	for _, t := range emul {
		if err := t.Rollback(); err != nil {
			if p.notify != nil {
				p.notify("rollback of %s failed: %v", t.Name(), err)
			}
		} else {
			p.rollbacks.Inc()
		}
	}
	for _, t := range native {
		// Force the native rollback now rather than waiting for the
		// device timer: roll back explicitly, then confirm the (now
		// reverted) state to disarm the device timer.
		if err := t.Rollback(); err != nil {
			if p.notify != nil {
				p.notify("rollback of %s failed: %v", t.Name(), err)
			}
		} else {
			p.rollbacks.Inc()
		}
		_ = t.Confirm()
	}
}

// Settled reports whether the pending deployment was confirmed or rolled
// back (explicitly or by expiry).
func (p *Pending) Settled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.settled
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
