// Package deploy implements Robotron's config deployment stage (SIGCOMM
// '16, §5.3): agile, scalable, safe rollout of generated configs to
// network devices while minimizing the risk of network outages.
//
// Two scenarios are supported. Initial provisioning (§5.3.1) erases and
// replaces the full config of drained devices, then validates connectivity.
// Incremental updates (§5.3.2) change running devices and compose four
// safety mechanisms:
//
//   - Dryrun mode: diffs between new and running configs are produced —
//     natively on platforms that support it, by before/after comparison on
//     those that don't — and presented for human review.
//   - Atomic mode: multi-device changes commit as one transaction; any
//     device failure rolls back every device already committed.
//   - Phased mode: devices update in engineer-specified phases (by
//     percentage, site, role) with a health gate between phases; a failed
//     gate halts the deployment and notifies the engineer.
//   - Human confirmation: commits are provisional for a grace period and
//     roll back automatically unless confirmed (device-native where
//     available, emulated by the deployer elsewhere).
package deploy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/confdiff"
	"github.com/robotron-net/robotron/internal/netsim"
)

// Target is the management session surface the deployer needs from a
// device; *netsim.Device implements it.
type Target interface {
	Name() string
	Vendor() netsim.Vendor
	Role() string
	Site() string
	Reachable() bool
	TrafficLoad() float64
	RunningConfig() (string, error)
	LoadConfig(string) error
	DryrunDiff() (string, error)
	Commit() error
	CommitConfirmed(grace time.Duration) error
	Confirm() error
	Rollback() error
	EraseConfig() error
}

var _ Target = (*netsim.Device)(nil)

// Resolver maps a device name to a management session.
type Resolver func(name string) (Target, error)

// FleetResolver resolves against a netsim fleet.
func FleetResolver(f *netsim.Fleet) Resolver {
	return func(name string) (Target, error) {
		d, ok := f.Device(name)
		if !ok {
			return nil, fmt.Errorf("deploy: unknown device %q", name)
		}
		return d, nil
	}
}

// Phase selects a subset of devices for one rollout step: the paper's
// "permutation of percentage/region/role of devices to be updated in each
// phase". Zero-valued filters match everything; Percent 0 means 100.
type Phase struct {
	Name    string
	Percent int
	Role    string
	Site    string
}

// Options control one deployment.
type Options struct {
	// Atomic commits all devices as one transaction with rollback on any
	// failure.
	Atomic bool
	// Phases splits the rollout; empty means a single phase of everything.
	// Devices matched by no phase form a final implicit phase.
	Phases []Phase
	// ConfirmGrace > 0 makes commits provisional: the returned Pending
	// must be confirmed within the grace period or every device rolls
	// back.
	ConfirmGrace time.Duration
	// CommitTimeout bounds how long one device may take to apply its
	// config; a device that "cannot finish applying the config within a
	// given time window" fails the deployment (and, in atomic mode, rolls
	// the whole transaction back once the straggler settles). 0 disables.
	CommitTimeout time.Duration
	// Review, if set, receives each device's diff before anything is
	// committed; returning false aborts the deployment ("the user is
	// presented with a diff ... to verify all changes").
	Review func(device, diff string) bool
	// HealthCheck gates phased rollouts; nil uses the default check
	// (device reachable, running config matches intent).
	HealthCheck func(t Target, intended string) error
	// Notify receives progress and failure notifications ("engineers will
	// get a notification from Robotron upon failures").
	Notify func(format string, args ...any)
}

func (o *Options) notify(format string, args ...any) {
	if o.Notify != nil {
		o.Notify(format, args...)
	}
}

// Result reports the outcome for one device.
type Result struct {
	Device  string
	Action  string // "committed", "rolled-back", "skipped", "erased+provisioned"
	Err     error
	Added   int
	Removed int
}

// Report is the outcome of one deployment.
type Report struct {
	Results []Result
	// Pending is non-nil when ConfirmGrace was set: call Confirm to make
	// the deployment permanent or Rollback to abandon it; doing neither
	// rolls back automatically when the grace period expires.
	Pending *Pending
}

// Failed returns the results that carry errors.
func (r Report) Failed() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// Deployer executes deployments against a device fleet.
type Deployer struct {
	Resolve Resolver
}

// NewDeployer returns a deployer using the given resolver.
func NewDeployer(r Resolver) *Deployer { return &Deployer{Resolve: r} }

// ErrDrainRequired is returned by initial provisioning for devices still
// carrying traffic ("network devices must be completely drained").
var ErrDrainRequired = errors.New("deploy: device must be drained before initial provisioning")

// ErrReviewRejected is returned when the human reviewer declines a diff.
var ErrReviewRejected = errors.New("deploy: diff review rejected by operator")

// InitialProvision erases and installs configs on clean (drained) devices,
// then validates basic connectivity (§5.3.1).
func (d *Deployer) InitialProvision(configs map[string]string, opts Options) (Report, error) {
	var rep Report
	names := sortedKeys(configs)
	// Drain check first: fail before touching anything.
	for _, name := range names {
		t, err := d.Resolve(name)
		if err != nil {
			return rep, err
		}
		if t.TrafficLoad() > 0 {
			return rep, fmt.Errorf("%w: %s carries traffic (load %.2f)", ErrDrainRequired, name, t.TrafficLoad())
		}
	}
	for _, name := range names {
		t, err := d.Resolve(name)
		if err != nil {
			return rep, err
		}
		res := Result{Device: name, Action: "erased+provisioned"}
		err = func() error {
			if err := t.EraseConfig(); err != nil {
				return err
			}
			if err := t.LoadConfig(configs[name]); err != nil {
				return err
			}
			if err := t.Commit(); err != nil {
				return err
			}
			// Basic validation: device reachable and running the config.
			if !t.Reachable() {
				return fmt.Errorf("deploy: %s unreachable after provisioning", name)
			}
			running, err := t.RunningConfig()
			if err != nil {
				return err
			}
			if running != configs[name] {
				return fmt.Errorf("deploy: %s running config does not match provisioned config", name)
			}
			return nil
		}()
		res.Err = err
		stats := confdiff.Compute("", configs[name]).Stats(true)
		res.Added = stats.Added
		rep.Results = append(rep.Results, res)
		if err != nil {
			opts.notify("initial provisioning failed on %s: %v", name, err)
			return rep, err
		}
	}
	return rep, nil
}

// Dryrun produces the per-device diff between the new configs and the
// running configs without committing anything. Platforms with native
// dryrun (Vendor2) are asked directly — catching "most errors from invalid
// configurations and vendor bugs" — while the rest get an emulated diff.
func (d *Deployer) Dryrun(configs map[string]string) (map[string]string, error) {
	out := make(map[string]string, len(configs))
	for _, name := range sortedKeys(configs) {
		t, err := d.Resolve(name)
		if err != nil {
			return nil, err
		}
		diff, err := d.dryrunOne(t, configs[name])
		if err != nil {
			return nil, err
		}
		out[name] = diff
	}
	return out, nil
}

func (d *Deployer) dryrunOne(t Target, newCfg string) (string, error) {
	if err := t.LoadConfig(newCfg); err != nil {
		return "", fmt.Errorf("deploy: %s rejected candidate config: %w", t.Name(), err)
	}
	native, err := t.DryrunDiff()
	switch {
	case err == nil:
		return native, nil
	case errors.Is(err, netsim.ErrNotSupported):
		// Emulated diff for platforms without native dryrun.
		running, err := t.RunningConfig()
		if err != nil {
			return "", err
		}
		return confdiff.Compute(running, newCfg).Unified(3), nil
	default:
		return "", err
	}
}

// Deploy performs an incremental update of the given device configs with
// the safety mechanisms selected in opts.
func (d *Deployer) Deploy(configs map[string]string, opts Options) (Report, error) {
	var rep Report
	targets := make(map[string]Target, len(configs))
	for _, name := range sortedKeys(configs) {
		t, err := d.Resolve(name)
		if err != nil {
			return rep, err
		}
		targets[name] = t
	}
	// Dryrun + human review before any commit.
	diffStats := make(map[string]confdiff.Stats, len(configs))
	for _, name := range sortedKeys(configs) {
		t := targets[name]
		diff, err := d.dryrunOne(t, configs[name])
		if err != nil {
			return rep, err
		}
		running, err := t.RunningConfig()
		if err != nil {
			return rep, err
		}
		diffStats[name] = confdiff.Compute(running, configs[name]).Stats(true)
		if opts.Review != nil && !opts.Review(name, diff) {
			opts.notify("deployment aborted: %s diff rejected by reviewer", name)
			return rep, fmt.Errorf("%w (device %s)", ErrReviewRejected, name)
		}
	}
	phases := partitionPhases(targets, opts.Phases)
	pending := &Pending{notify: opts.notify}
	committed := make([]string, 0, len(configs))
	// stragglers are devices whose commit outlived the time window; their
	// in-flight result must settle before any rollback is safe.
	type straggler struct {
		name string
		done <-chan error
	}
	var stragglers []straggler
	settleStragglers := func() {
		for _, s := range stragglers {
			if err := <-s.done; err == nil {
				// The late commit landed after all: it must be rolled
				// back with the rest.
				committed = append(committed, s.name)
				opts.notify("straggler %s finished committing after the window; including in rollback", s.name)
			}
		}
		stragglers = nil
	}
	rollbackAll := func() {
		if opts.ConfirmGrace > 0 {
			// Commit-confirmed devices are tracked by the pending set,
			// which also disarms device-native rollback timers.
			_ = pending.Rollback()
			for i := len(committed) - 1; i >= 0; i-- {
				rep.Results = append(rep.Results, Result{Device: committed[i], Action: "rolled-back"})
			}
			return
		}
		for i := len(committed) - 1; i >= 0; i-- {
			name := committed[i]
			if err := targets[name].Rollback(); err != nil {
				opts.notify("rollback of %s failed: %v", name, err)
			} else {
				rep.Results = append(rep.Results, Result{Device: name, Action: "rolled-back"})
			}
		}
	}
	for pi, phase := range phases {
		opts.notify("phase %d/%d (%s): %d device(s)", pi+1, len(phases), phase.name, len(phase.devices))
		for _, name := range phase.devices {
			t := targets[name]
			var err error
			if opts.CommitTimeout > 0 {
				done := make(chan error, 1)
				go func(t Target, cfg string) {
					done <- commitOne(t, cfg, opts.ConfirmGrace, pending)
				}(t, configs[name])
				select {
				case err = <-done:
				case <-time.After(opts.CommitTimeout):
					stragglers = append(stragglers, straggler{name: name, done: done})
					err = fmt.Errorf("deploy: %s did not finish applying within %v", name, opts.CommitTimeout)
				}
			} else {
				err = commitOne(t, configs[name], opts.ConfirmGrace, pending)
			}
			stats := diffStats[name]
			res := Result{Device: name, Action: "committed", Err: err, Added: stats.Added, Removed: stats.Removed}
			rep.Results = append(rep.Results, res)
			if err != nil {
				opts.notify("commit failed on %s: %v", name, err)
				if opts.Atomic {
					settleStragglers()
					opts.notify("atomic deployment: rolling back %d committed device(s)", len(committed))
					rollbackAll()
					return rep, fmt.Errorf("deploy: atomic deployment failed on %s: %w", name, err)
				}
				return rep, fmt.Errorf("deploy: deployment failed on %s: %w", name, err)
			}
			committed = append(committed, name)
		}
		// Health gate: "Robotron monitors metrics to track the progress of
		// each phase and only continues deployment if the previous phase
		// is successful."
		check := opts.HealthCheck
		if check == nil {
			check = defaultHealthCheck
		}
		for _, name := range phase.devices {
			if err := check(targets[name], configs[name]); err != nil {
				opts.notify("phase %d health gate failed on %s: %v — halting deployment", pi+1, name, err)
				if opts.Atomic {
					rollbackAll()
					return rep, fmt.Errorf("deploy: atomic deployment health check failed on %s: %w", name, err)
				}
				return rep, fmt.Errorf("deploy: phase %d halted: %s unhealthy: %w", pi+1, name, err)
			}
		}
	}
	if opts.ConfirmGrace > 0 {
		pending.arm(opts.ConfirmGrace)
		rep.Pending = pending
	}
	return rep, nil
}

// commitOne commits one device, provisionally when grace > 0. Vendor2
// uses the device's native commit-confirmed; other platforms are emulated
// by the deployer's rollback timer.
func commitOne(t Target, cfg string, grace time.Duration, pending *Pending) error {
	if err := t.LoadConfig(cfg); err != nil {
		return err
	}
	if grace <= 0 {
		return t.Commit()
	}
	if err := t.CommitConfirmed(grace); err == nil {
		pending.add(t, true)
		return nil
	} else if !errors.Is(err, netsim.ErrNotSupported) {
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	pending.add(t, false)
	return nil
}

func defaultHealthCheck(t Target, intended string) error {
	if !t.Reachable() {
		return fmt.Errorf("device unreachable")
	}
	running, err := t.RunningConfig()
	if err != nil {
		return err
	}
	if running != intended {
		return fmt.Errorf("running config deviates from intent")
	}
	return nil
}

// phaseSet is a resolved phase: name + member devices.
type phaseSet struct {
	name    string
	devices []string
}

// partitionPhases assigns every device to exactly one phase, in order;
// unmatched devices form a trailing implicit phase.
func partitionPhases(targets map[string]Target, phases []Phase) []phaseSet {
	remaining := sortedKeys(targets)
	if len(phases) == 0 {
		return []phaseSet{{name: "all", devices: remaining}}
	}
	var out []phaseSet
	taken := map[string]bool{}
	for i, p := range phases {
		var matching []string
		for _, name := range remaining {
			if taken[name] {
				continue
			}
			t := targets[name]
			if p.Role != "" && t.Role() != p.Role {
				continue
			}
			if p.Site != "" && t.Site() != p.Site {
				continue
			}
			matching = append(matching, name)
		}
		pct := p.Percent
		if pct <= 0 || pct > 100 {
			pct = 100
		}
		n := (len(matching)*pct + 99) / 100
		selected := matching[:min(n, len(matching))]
		for _, name := range selected {
			taken[name] = true
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase-%d", i+1)
		}
		if len(selected) > 0 {
			out = append(out, phaseSet{name: name, devices: selected})
		}
	}
	var rest []string
	for _, name := range remaining {
		if !taken[name] {
			rest = append(rest, name)
		}
	}
	if len(rest) > 0 {
		out = append(out, phaseSet{name: "final", devices: rest})
	}
	return out
}

// Pending is a deployment awaiting human confirmation (§5.3.2): "a final
// confirmation must be provided during the grace period otherwise
// Robotron will rollback the changes."
type Pending struct {
	notify func(string, ...any)

	mu      sync.Mutex
	native  []Target // devices with device-native commit-confirmed
	emul    []Target // devices whose rollback the deployer emulates
	timer   *time.Timer
	settled bool
}

func (p *Pending) add(t Target, native bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if native {
		p.native = append(p.native, t)
	} else {
		p.emul = append(p.emul, t)
	}
}

func (p *Pending) arm(grace time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timer = time.AfterFunc(grace, p.expire)
}

// Devices returns the names of devices pending confirmation.
func (p *Pending) Devices() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, t := range p.native {
		out = append(out, t.Name())
	}
	for _, t := range p.emul {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// Confirm finalizes the deployment on every device.
func (p *Pending) Confirm() error {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return fmt.Errorf("deploy: deployment already settled")
	}
	p.settled = true
	if p.timer != nil {
		p.timer.Stop()
	}
	native := p.native
	p.mu.Unlock()
	var errs []string
	for _, t := range native {
		if err := t.Confirm(); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", t.Name(), err))
		}
	}
	// Emulated devices are already committed permanently; stopping the
	// timer is the confirmation.
	if len(errs) > 0 {
		return fmt.Errorf("deploy: confirmation failed: %s", strings.Join(errs, "; "))
	}
	return nil
}

// Rollback abandons the deployment immediately on every device.
func (p *Pending) Rollback() error {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return fmt.Errorf("deploy: deployment already settled")
	}
	p.settled = true
	if p.timer != nil {
		p.timer.Stop()
	}
	p.mu.Unlock()
	p.rollbackAll()
	return nil
}

// expire fires when the grace period lapses without confirmation.
func (p *Pending) expire() {
	p.mu.Lock()
	if p.settled {
		p.mu.Unlock()
		return
	}
	p.settled = true
	p.mu.Unlock()
	if p.notify != nil {
		p.notify("grace period expired without confirmation: rolling back")
	}
	// Native devices roll back on their own; the deployer reverts the rest.
	p.mu.Lock()
	emul := append([]Target(nil), p.emul...)
	p.mu.Unlock()
	for _, t := range emul {
		if err := t.Rollback(); err != nil && p.notify != nil {
			p.notify("emulated rollback of %s failed: %v", t.Name(), err)
		}
	}
}

func (p *Pending) rollbackAll() {
	p.mu.Lock()
	native := append([]Target(nil), p.native...)
	emul := append([]Target(nil), p.emul...)
	p.mu.Unlock()
	for _, t := range emul {
		if err := t.Rollback(); err != nil && p.notify != nil {
			p.notify("rollback of %s failed: %v", t.Name(), err)
		}
	}
	for _, t := range native {
		// Force the native rollback now rather than waiting for the
		// device timer: roll back explicitly, then confirm the (now
		// reverted) state to disarm the device timer.
		if err := t.Rollback(); err != nil && p.notify != nil {
			p.notify("rollback of %s failed: %v", t.Name(), err)
		}
		_ = t.Confirm()
	}
}

// Settled reports whether the pending deployment was confirmed or rolled
// back (explicitly or by expiry).
func (p *Pending) Settled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.settled
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
