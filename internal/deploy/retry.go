package deploy

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// Retry layer: error classification plus bounded, jittered backoff for
// the per-device commit pipeline. The paper's deployment engine talks to
// tens of thousands of devices over sessions that hiccup, stall and drop
// mid-commit (§5.3); one flaky session must cost a retry, not a failed
// phase — while a commit whose reply was lost must never be blindly
// re-driven without first finding out whether it landed.

// ErrorClass buckets a management-plane error by the safe response.
type ErrorClass int

const (
	// ClassPermanent errors will not heal with time: fail fast into the
	// existing rollback/settlement paths.
	ClassPermanent ErrorClass = iota
	// ClassTransient errors are safe to retry blindly: the operation did
	// not take effect.
	ClassTransient
	// ClassAmbiguous errors leave the operation's effect unknown (the
	// session died or the reply was unreadable): the device state must
	// be read back before deciding between retry and success.
	ClassAmbiguous
)

// String renders the class for notifications and test output.
func (c ErrorClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassAmbiguous:
		return "ambiguous"
	default:
		return "permanent"
	}
}

// Transienter lets non-netsim targets mark their own errors retryable.
type Transienter interface{ Transient() bool }

// Classify buckets err. Connection drops, timeouts and garbled replies
// are ambiguous — the request may have been applied before the reply was
// lost. Session hiccups and unreachability are transient. Everything
// else (vendor rejection, validation failure, unknown device) is
// permanent.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassPermanent
	}
	switch {
	case errors.Is(err, netsim.ErrConnDropped),
		errors.Is(err, netsim.ErrTimeout),
		errors.Is(err, netsim.ErrGarbledReply):
		return ClassAmbiguous
	case errors.Is(err, netsim.ErrInjectedTransient),
		errors.Is(err, netsim.ErrUnreachable):
		return ClassTransient
	}
	var tr Transienter
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// RetryPolicy bounds and paces per-device retries.
type RetryPolicy struct {
	// MaxAttempts is the per-device attempt budget per operation
	// (first try included). 0 defaults to 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubled per retry).
	// 0 defaults to 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. 0 defaults to 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized away (0..1).
	// 0 defaults to 0.5; negative disables jitter entirely.
	Jitter float64
	// Seed makes the jitter stream reproducible; combined with the
	// device name so concurrent devices draw independent streams.
	Seed int64
	// Sleep replaces time.Sleep in tests. Nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// rng derives a per-device jitter stream so parallel workers never
// contend on one source and runs replay deterministically per seed.
func (p RetryPolicy) rng(device string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", p.Seed, device)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// delay computes the backoff before retry number n (1-based), jittered
// downward so synchronized failures fan out instead of thundering back.
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - p.Jitter*rng.Float64()))
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// pause books one backoff sleep: metrics, then sleep.
func (p RetryPolicy) pause(n int, rng *rand.Rand, met deployMetrics) {
	d := p.delay(n, rng)
	met.retries.Inc()
	met.backoffSec.Observe(d.Seconds())
	p.sleep(d)
}

// commitStage tells the retry loop which operation an error came from:
// staging is idempotent (ambiguity collapses to retry), committing is
// not (ambiguity demands readback).
type commitStage int

const (
	stageLoad commitStage = iota
	stageCommit
)

// commitAttemptOnce drives one load+commit pass, reporting the failing
// stage and whether the device-native commit-confirmed path was in play
// (it decides how a resolved ambiguous commit registers with pending).
func commitAttemptOnce(t Target, cfg string, grace time.Duration, pending *Pending) (commitStage, bool, error) {
	if err := t.LoadConfig(cfg); err != nil {
		return stageLoad, false, err
	}
	if grace <= 0 {
		return stageCommit, false, t.Commit()
	}
	err := t.CommitConfirmed(grace)
	if err == nil {
		pending.add(t, true)
		return stageCommit, true, nil
	}
	if !errors.Is(err, netsim.ErrNotSupported) {
		return stageCommit, true, err
	}
	if err := t.Commit(); err != nil {
		return stageCommit, false, err
	}
	pending.add(t, false)
	return stageCommit, false, nil
}

// commitOneRetry is commitOne under a retry budget. Transient errors
// back off and retry; ambiguous commit errors are resolved by reading
// the running config back — if it already matches the intent the commit
// landed and is reported as success without being driven again; if not,
// the commit demonstrably did not apply and is retried. Permanent
// errors, and an exhausted budget, fail into the caller's existing
// rollback/settlement paths.
func commitOneRetry(t Target, cfg string, grace time.Duration, pending *Pending,
	rp RetryPolicy, met deployMetrics, nf *notifier) error {

	rp = rp.withDefaults()
	rng := rp.rng(t.Name())
	var lastErr error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		if attempt > 1 {
			rp.pause(attempt-1, rng, met)
		}
		stage, native, err := commitAttemptOnce(t, cfg, grace, pending)
		if err == nil {
			return nil
		}
		lastErr = err
		class := Classify(err)
		if class == ClassAmbiguous && stage == stageLoad {
			// Staging is idempotent; an ambiguous load is just a retry.
			class = ClassTransient
		}
		switch class {
		case ClassPermanent:
			return err
		case ClassTransient:
			nf.notify("%s: %s error (attempt %d/%d), will retry: %v", t.Name(), class, attempt, rp.MaxAttempts, err)
			continue
		case ClassAmbiguous:
			applied, rerr := resolveAmbiguousCommit(t, cfg, rp, rng, met)
			if rerr != nil {
				return fmt.Errorf("deploy: %s: ambiguous commit unresolvable (%v) after: %w", t.Name(), rerr, err)
			}
			if applied {
				// The commit landed before the session died; do not
				// drive it again. Register the provisional commit the
				// same way the direct path would have.
				met.ambigApplied.Inc()
				nf.notify("%s: ambiguous commit resolved: config already applied (attempt %d)", t.Name(), attempt)
				if grace > 0 {
					pending.add(t, native)
				}
				return nil
			}
			met.ambigRetried.Inc()
			nf.notify("%s: ambiguous commit resolved: not applied, retrying (attempt %d/%d)", t.Name(), attempt, rp.MaxAttempts)
			continue
		}
	}
	return fmt.Errorf("deploy: %s: retry budget (%d attempts) exhausted: %w", t.Name(), rp.MaxAttempts, lastErr)
}

// resolveAmbiguousCommit decides whether an ambiguous commit actually
// applied by reading the running config back and comparing it against
// the intent. The readback itself runs under a bounded transient-retry
// loop (the same flaky session may still be flaky).
func resolveAmbiguousCommit(t Target, cfg string, rp RetryPolicy, rng *rand.Rand, met deployMetrics) (bool, error) {
	var lastErr error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		if attempt > 1 {
			rp.pause(attempt-1, rng, met)
		}
		running, err := t.RunningConfig()
		if err != nil {
			if Classify(err) == ClassPermanent {
				return false, err
			}
			lastErr = err
			continue
		}
		return running == cfg, nil
	}
	return false, fmt.Errorf("readback failed: %w", lastErr)
}

// retryIdempotent runs an idempotent read-side operation (dryrun,
// readback, health check) under the retry budget: transient and
// ambiguous errors retry, permanent errors return immediately.
func retryIdempotent(rp RetryPolicy, device string, met deployMetrics, op func() error) error {
	rp = rp.withDefaults()
	rng := rp.rng(device + "|read")
	var lastErr error
	for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
		if attempt > 1 {
			rp.pause(attempt-1, rng, met)
		}
		err := op()
		if err == nil {
			return nil
		}
		if Classify(err) == ClassPermanent {
			return err
		}
		lastErr = err
	}
	return lastErr
}
