package deploy

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// newTestFleet builds a fleet of n vendor-alternating devices with a
// baseline config committed.
func newTestFleet(t testing.TB, n int) (*netsim.Fleet, *Deployer, map[string]string) {
	t.Helper()
	fleet := netsim.NewFleet()
	baseline := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dev%02d", i)
		vendor, role := netsim.Vendor1, "psw"
		site := "pop1"
		if i%2 == 1 {
			vendor, role = netsim.Vendor2, "pr"
		}
		if i >= n/2 {
			site = "pop2"
		}
		d, err := fleet.AddDevice(name, vendor, role, site)
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(vendor, name, 1)
		if err := d.LoadConfig(cfg); err != nil {
			t.Fatal(err)
		}
		if err := d.Commit(); err != nil {
			t.Fatal(err)
		}
		baseline[name] = cfg
	}
	return fleet, NewDeployer(FleetResolver(fleet)), baseline
}

// baseConfig emits a small valid config for the vendor; rev changes its
// content.
func baseConfig(v netsim.Vendor, name string, rev int) string {
	if v == netsim.Vendor2 {
		return fmt.Sprintf("system {\n host-name %s;\n}\nae0 {\n mtu %d;\n}\n", name, 9000+rev)
	}
	return fmt.Sprintf("hostname %s\ninterface ae0\n mtu %d\n", name, 9000+rev)
}

func newConfigs(fleet *netsim.Fleet, rev int) map[string]string {
	out := map[string]string{}
	for _, d := range fleet.Devices() {
		out[d.Name()] = baseConfig(d.Vendor(), d.Name(), rev)
	}
	return out
}

func TestInitialProvision(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.InitialProvision(cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 4 {
		t.Errorf("results = %d", len(rep.Results))
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if cfg != cfgs[d.Name()] {
			t.Errorf("%s not provisioned", d.Name())
		}
	}
}

func TestInitialProvisionRequiresDrain(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	d, _ := fleet.Device("dev01")
	d.SetTrafficLoad(0.4)
	_, err := dep.InitialProvision(newConfigs(fleet, 2), Options{})
	if !errors.Is(err, ErrDrainRequired) {
		t.Errorf("want ErrDrainRequired, got %v", err)
	}
	// dev00 must be untouched: drain check runs before any change.
	d0, _ := fleet.Device("dev00")
	cfg, _ := d0.RunningConfig()
	if !strings.Contains(cfg, "9001") {
		t.Error("devices were touched despite failed drain check")
	}
}

func TestDryrunBothVendors(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	diffs, err := dep.Dryrun(newConfigs(fleet, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// dev00 is vendor1 (emulated unified diff), dev01 vendor2 (native).
	if !strings.Contains(diffs["dev00"], "- ") || !strings.Contains(diffs["dev00"], "+ ") {
		t.Errorf("vendor1 emulated diff = %q", diffs["dev00"])
	}
	if !strings.Contains(diffs["dev01"], "+  mtu 9002;") {
		t.Errorf("vendor2 native diff = %q", diffs["dev01"])
	}
	// Dryrun must not change running configs.
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s running config changed by dryrun", d.Name())
		}
	}
}

func TestDryrunCatchesInvalidConfig(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	cfgs := newConfigs(fleet, 2)
	cfgs["dev01"] = "ae0 {\n unbalanced\n" // vendor2 syntax error
	if _, err := dep.Dryrun(cfgs, Options{}); err == nil {
		t.Error("invalid vendor2 config should fail dryrun")
	}
	_ = fleet
}

func TestDeploySimple(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Errorf("failures: %+v", rep.Failed())
	}
	for _, res := range rep.Results {
		if res.Added == 0 && res.Removed == 0 {
			t.Errorf("%s diff stats empty", res.Device)
		}
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if cfg != cfgs[d.Name()] {
			t.Errorf("%s not updated", d.Name())
		}
	}
}

func TestDeployReviewRejection(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	_, err := dep.Deploy(newConfigs(fleet, 2), Options{
		Review: func(device, diff string) bool { return device != "dev01" },
	})
	if !errors.Is(err, ErrReviewRejected) {
		t.Errorf("want ErrReviewRejected, got %v", err)
	}
	// Nothing committed: review happens before any commit.
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s committed despite rejected review", d.Name())
		}
	}
}

func TestAtomicRollbackOnFailure(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	// dev02 dies after the dryrun pass but before its commit.
	var died bool
	opts := Options{
		Atomic: true,
		HealthCheck: func(tg Target, intended string) error {
			return nil // gate not under test
		},
		Review: func(device, diff string) bool {
			if device == "dev03" && !died {
				// Kill dev02 late so dryrun succeeded for it already.
				d, _ := fleet.Device("dev02")
				d.SetDown(true)
				died = true
			}
			return true
		},
	}
	_, err := dep.Deploy(cfgs, opts)
	if err == nil {
		t.Fatal("atomic deployment should fail when a device dies")
	}
	// dev00 and dev01 were committed before dev02 failed; they must be
	// rolled back to the baseline.
	for _, name := range []string{"dev00", "dev01"} {
		d, _ := fleet.Device(name)
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back after atomic failure: %q", name, cfg)
		}
	}
}

func TestNonAtomicStopsWithoutRollback(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	d2, _ := fleet.Device("dev02")
	opts := Options{
		Review: func(device, diff string) bool {
			if device == "dev03" {
				d2.SetDown(true)
			}
			return true
		},
		HealthCheck: func(tg Target, intended string) error { return nil },
	}
	_, err := dep.Deploy(cfgs, opts)
	if err == nil {
		t.Fatal("deployment should fail")
	}
	// Non-atomic: dev00/dev01 stay on the new config.
	for _, name := range []string{"dev00", "dev01"} {
		d, _ := fleet.Device(name)
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9002") {
			t.Errorf("%s unexpectedly rolled back: %q", name, cfg)
		}
	}
}

func TestPhasedDeploymentOrder(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 8)
	cfgs := newConfigs(fleet, 2)
	var phaseLog []string
	opts := Options{
		Phases: []Phase{
			{Name: "canary-pop1-psw", Percent: 50, Role: "psw", Site: "pop1"},
			{Name: "rest-pop1", Site: "pop1"},
		},
		Notify: func(format string, args ...any) {
			phaseLog = append(phaseLog, fmt.Sprintf(format, args...))
		},
	}
	rep, err := dep.Deploy(cfgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Errorf("results = %d", len(rep.Results))
	}
	var sawCanary, sawFinal bool
	for _, l := range phaseLog {
		if strings.Contains(l, "canary-pop1-psw") {
			sawCanary = true
		}
		if strings.Contains(l, "final") {
			sawFinal = true
		}
	}
	if !sawCanary || !sawFinal {
		t.Errorf("phase notifications missing: %v", phaseLog)
	}
}

func TestPhasedHaltsOnHealthGate(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 8)
	cfgs := newConfigs(fleet, 2)
	committedInPhase1 := map[string]bool{}
	opts := Options{
		Phases: []Phase{
			{Name: "canary", Percent: 25},
			{Name: "rest"},
		},
		HealthCheck: func(tg Target, intended string) error {
			committedInPhase1[tg.Name()] = true
			return fmt.Errorf("synthetic metric regression")
		},
	}
	_, err := dep.Deploy(cfgs, opts)
	if err == nil || !strings.Contains(err.Error(), "halted") {
		t.Fatalf("want halt error, got %v", err)
	}
	// Only the canary phase (2 of 8 devices) was touched.
	updated := 0
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if strings.Contains(cfg, "9002") {
			updated++
		}
	}
	if updated != 2 {
		t.Errorf("%d devices updated before halt, want 2", updated)
	}
}

func TestCommitConfirmFlow(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pending == nil {
		t.Fatal("expected pending confirmation")
	}
	if got := len(rep.Pending.Devices()); got != 4 {
		t.Errorf("pending devices = %d", got)
	}
	if err := rep.Pending.Confirm(); err != nil {
		t.Fatal(err)
	}
	if !rep.Pending.Settled() {
		t.Error("pending should be settled after Confirm")
	}
	time.Sleep(20 * time.Millisecond)
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9002") {
			t.Errorf("%s lost confirmed config: %q", d.Name(), cfg)
		}
		if d.ConfirmPending() {
			t.Errorf("%s still has a device-native rollback timer armed", d.Name())
		}
	}
	if err := rep.Pending.Confirm(); err == nil {
		t.Error("double confirm should fail")
	}
}

func TestCommitConfirmExpiryRollsBackBothVendors(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !rep.Pending.Settled() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Allow the device-native (vendor2) timer to fire as well.
	d1, _ := fleet.Device("dev01")
	for d1.ConfirmPending() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back after grace expiry: %q", d.Name(), cfg)
		}
	}
}

func TestCommitConfirmExplicitRollback(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Pending.Rollback(); err != nil {
		t.Fatal(err)
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back: %q", d.Name(), cfg)
		}
		if d.ConfirmPending() {
			t.Errorf("%s device timer still armed after explicit rollback", d.Name())
		}
	}
}

func TestPhasePartitioning(t *testing.T) {
	fleet, _, _ := newTestFleet(t, 8)
	targets := map[string]Target{}
	for _, d := range fleet.Devices() {
		targets[d.Name()] = d
	}
	// 8 devices: 4 psw (even), 4 pr (odd); 4 in pop1, 4 in pop2.
	phases := partitionPhases(targets, []Phase{
		{Name: "p1", Percent: 50, Role: "psw"},
		{Name: "p2", Role: "psw"},
	})
	if len(phases) != 3 { // p1, p2, final (prs)
		t.Fatalf("phases = %d: %+v", len(phases), phases)
	}
	if len(phases[0].devices) != 2 || len(phases[1].devices) != 2 || len(phases[2].devices) != 4 {
		t.Errorf("phase sizes = %d/%d/%d", len(phases[0].devices), len(phases[1].devices), len(phases[2].devices))
	}
	// Every device appears exactly once.
	seen := map[string]int{}
	for _, p := range phases {
		for _, d := range p.devices {
			seen[d]++
		}
	}
	if len(seen) != 8 {
		t.Errorf("devices covered = %d", len(seen))
	}
	for d, n := range seen {
		if n != 1 {
			t.Errorf("device %s in %d phases", d, n)
		}
	}
}

func TestDeployUnknownDevice(t *testing.T) {
	_, dep, _ := newTestFleet(t, 1)
	_, err := dep.Deploy(map[string]string{"ghost": "x"}, Options{})
	if err == nil {
		t.Error("unknown device should fail")
	}
}

func BenchmarkDeployFleet(b *testing.B) {
	fleet, dep, _ := newTestFleet(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs := newConfigs(fleet, i+2)
		if _, err := dep.Deploy(cfgs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCommitTimeWindow: a device that cannot finish applying within the
// window fails the deployment; in atomic mode the whole transaction rolls
// back, including the straggler's late-landing commit.
func TestCommitTimeWindow(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 3)
	slow, _ := fleet.Device("dev01")
	slow.SetCommitDelay(150 * time.Millisecond)
	cfgs := newConfigs(fleet, 2)
	_, err := dep.Deploy(cfgs, Options{
		Atomic:        true,
		CommitTimeout: 30 * time.Millisecond,
		HealthCheck:   func(tg Target, intended string) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "did not finish applying") {
		t.Fatalf("want time-window error, got %v", err)
	}
	// Every device — including the slow one whose commit landed late —
	// runs the baseline config again.
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back after window breach: %q", d.Name(), cfg)
		}
	}
}

// TestCommitTimeWindowFastDevicesPass: a generous window changes nothing.
func TestCommitTimeWindowFastDevicesPass(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{Atomic: true, CommitTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Errorf("failures: %+v", rep.Failed())
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9002") {
			t.Errorf("%s not updated", d.Name())
		}
	}
}
