package deploy

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/telemetry"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{nil, ClassPermanent},
		{errors.New("syntax error"), ClassPermanent},
		{fmt.Errorf("wrap: %w", netsim.ErrInjectedTransient), ClassTransient},
		{fmt.Errorf("wrap: %w", netsim.ErrUnreachable), ClassTransient},
		{fmt.Errorf("wrap: %w", netsim.ErrConnDropped), ClassAmbiguous},
		{fmt.Errorf("wrap: %w", netsim.ErrTimeout), ClassAmbiguous},
		{fmt.Errorf("wrap: %w", netsim.ErrGarbledReply), ClassAmbiguous},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryPolicyDelaysDeterministic(t *testing.T) {
	seq := func(seed int64) []time.Duration {
		rp := RetryPolicy{Seed: seed}.withDefaults()
		rng := rp.rng("dev01")
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = rp.delay(i+1, rng)
		}
		return out
	}
	a, b := seq(9), seq(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, delay %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i] > 2*time.Second {
			t.Errorf("delay %d = %v exceeds MaxDelay", i, a[i])
		}
	}
	// Jitter disabled: pure exponential, so ordering is strict until the cap.
	rp := RetryPolicy{Jitter: -1}.withDefaults()
	rng := rp.rng("dev01")
	if d1, d2 := rp.delay(1, rng), rp.delay(2, rng); d2 != 2*d1 {
		t.Errorf("jitter-free backoff not doubling: %v then %v", d1, d2)
	}
}

// countingTarget counts Commit/CommitConfirmed invocations that reach
// the device, proving the no-double-commit property of ambiguity
// resolution.
type countingTarget struct {
	Target
	commits *atomic.Int64
}

func (c countingTarget) Commit() error {
	c.commits.Add(1)
	return c.Target.Commit()
}

func (c countingTarget) CommitConfirmed(grace time.Duration) error {
	c.commits.Add(1)
	return c.Target.CommitConfirmed(grace)
}

func noSleep(rp *RetryPolicy) { rp.Sleep = func(time.Duration) {} }

func TestDeployRetriesTransientFault(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	p := netsim.NewFaultPolicy(11)
	p.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: 1, Verbs: []string{"commit"}, MaxCount: 2})
	fleet.SetFaultPolicy(p)
	reg := telemetry.NewRegistry()
	dep.Instrument(reg)

	rp := &RetryPolicy{Seed: 1}
	noSleep(rp)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{Retry: rp})
	if err != nil {
		t.Fatalf("deploy with transient faults should succeed via retry: %v (results %v)", err, rep.Results)
	}
	for _, d := range fleet.Devices() {
		if cfg, _ := d.RunningConfig(); cfg != cfgs[d.Name()] {
			t.Errorf("%s did not converge", d.Name())
		}
	}
	if got := reg.Counter("robotron_deploy_retries_total").Value(); got < 2 {
		t.Errorf("retries counter = %d, want >= 2", got)
	}
}

// TestAmbiguousCommitResolvedWithoutDoubleCommit is the acceptance case:
// the connection drops after the commit applied but before the OK
// arrived. The retry layer must read the config back, see it matches the
// intent, and report success WITHOUT driving the commit a second time.
func TestAmbiguousCommitResolvedWithoutDoubleCommit(t *testing.T) {
	fleet, _, _ := newTestFleet(t, 1)
	p := netsim.NewFaultPolicy(5)
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	fleet.SetFaultPolicy(p)

	var commits atomic.Int64
	base := FleetResolver(fleet)
	dep := NewDeployer(func(name string) (Target, error) {
		tgt, err := base(name)
		if err != nil {
			return nil, err
		}
		return countingTarget{Target: tgt, commits: &commits}, nil
	})
	reg := telemetry.NewRegistry()
	dep.Instrument(reg)

	rp := &RetryPolicy{Seed: 1}
	noSleep(rp)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{Retry: rp})
	if err != nil {
		t.Fatalf("ambiguous commit should resolve to success: %v (results %v)", err, rep.Results)
	}
	if got := commits.Load(); got != 1 {
		t.Fatalf("device saw %d commit(s), want exactly 1 — ambiguity resolution must not re-commit", got)
	}
	d, _ := fleet.Device("dev00")
	if cfg, _ := d.RunningConfig(); cfg != cfgs["dev00"] {
		t.Error("config not applied")
	}
	applied := reg.Counter("robotron_deploy_ambiguous_resolutions_total",
		telemetry.Label{Key: "outcome", Value: "applied"}).Value()
	if applied != 1 {
		t.Errorf("ambiguous resolutions (applied) = %d, want 1", applied)
	}
}

// Drop BEFORE apply: readback shows the old config, so resolution must
// conclude "not applied" and drive the commit again.
func TestAmbiguousCommitNotAppliedRetries(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 1)
	p := netsim.NewFaultPolicy(5)
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropBefore, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	fleet.SetFaultPolicy(p)
	reg := telemetry.NewRegistry()
	dep.Instrument(reg)

	rp := &RetryPolicy{Seed: 1}
	noSleep(rp)
	cfgs := newConfigs(fleet, 2)
	if _, err := dep.Deploy(cfgs, Options{Retry: rp}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	d, _ := fleet.Device("dev00")
	if cfg, _ := d.RunningConfig(); cfg != cfgs["dev00"] {
		t.Error("config not applied after retry")
	}
	retried := reg.Counter("robotron_deploy_ambiguous_resolutions_total",
		telemetry.Label{Key: "outcome", Value: "retried"}).Value()
	if retried != 1 {
		t.Errorf("ambiguous resolutions (retried) = %d, want 1", retried)
	}
}

// Ambiguity resolution under commit-confirm: the drop hits the native
// commit-confirmed verb; after resolution the pending set must still
// know about the device so the confirm step completes the rollout.
func TestAmbiguousCommitConfirmedResolves(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	p := netsim.NewFaultPolicy(5)
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: 1, Verbs: []string{"commit-confirmed", "commit"}, MaxCount: 1})
	fleet.SetFaultPolicy(p)

	rp := &RetryPolicy{Seed: 1}
	noSleep(rp)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{Retry: rp, ConfirmGrace: 2 * time.Second})
	if err != nil {
		t.Fatalf("deploy: %v (results %v)", err, rep.Results)
	}
	if rep.Pending == nil || len(rep.Pending.Devices()) != 2 {
		t.Fatalf("pending = %v, want 2 provisional commits", rep.Pending)
	}
	if err := rep.Pending.Confirm(); err != nil {
		t.Fatalf("confirm: %v", err)
	}
	// Outlive the grace period: a lost pending registration would roll
	// the device back here.
	time.Sleep(2500 * time.Millisecond)
	for _, d := range fleet.Devices() {
		if cfg, _ := d.RunningConfig(); cfg != cfgs[d.Name()] {
			t.Errorf("%s rolled back after confirm — pending registration lost", d.Name())
		}
	}
}

func TestRetryBudgetExhaustionFails(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 1)
	p := netsim.NewFaultPolicy(5)
	// Unlimited transient faults: the budget must run out.
	p.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: 1, Verbs: []string{"commit"}})
	fleet.SetFaultPolicy(p)

	rp := &RetryPolicy{Seed: 1, MaxAttempts: 3}
	noSleep(rp)
	_, err := dep.Deploy(newConfigs(fleet, 2), Options{Retry: rp})
	if err == nil {
		t.Fatal("deploy should fail once the retry budget is exhausted")
	}
	if !errors.Is(err, netsim.ErrInjectedTransient) {
		t.Errorf("exhaustion error should wrap the last transport error, got %v", err)
	}
}

func TestPermanentErrorFailsFast(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 2)
	var commits atomic.Int64
	base := FleetResolver(fleet)
	dep = NewDeployer(func(name string) (Target, error) {
		tgt, err := base(name)
		if err != nil {
			return nil, err
		}
		return countingTarget{Target: tgt, commits: &commits}, nil
	})
	rp := &RetryPolicy{Seed: 1}
	noSleep(rp)
	// Invalid config: a permanent rejection the retry loop must not chew
	// on (dev01 is Vendor2, whose syntax check rejects unbalanced blocks).
	_, err := dep.Deploy(map[string]string{"dev01": "ae0 {\n unbalanced\n"}, Options{Retry: rp})
	if err == nil {
		t.Fatal("invalid config should fail")
	}
	if got := commits.Load(); got > 1 {
		t.Errorf("permanent error was retried %d times — must fail fast", got)
	}
}

func TestInitialProvisionRetriesFaults(t *testing.T) {
	fleet, dep, _ := newTestFleet(t, 4)
	p := netsim.NewFaultPolicy(21)
	p.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: 0.4, Verbs: []string{"erase", "load-config", "commit"}})
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: 0.2, Verbs: []string{"commit"}})
	fleet.SetFaultPolicy(p)

	rp := &RetryPolicy{Seed: 1, MaxAttempts: 8}
	noSleep(rp)
	cfgs := newConfigs(fleet, 3)
	if _, err := dep.InitialProvision(cfgs, Options{Retry: rp}); err != nil {
		t.Fatalf("provision under chaos: %v", err)
	}
	for _, d := range fleet.Devices() {
		if cfg, _ := d.RunningConfig(); cfg != cfgs[d.Name()] {
			t.Errorf("%s not provisioned", d.Name())
		}
	}
}
