package deploy

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/netsim"
)

// RemoteResolver resolves deployment targets over the TCP management
// plane instead of in process, proving the deployer is transport-agnostic.
func remoteResolver(t *testing.T, addr string) Resolver {
	t.Helper()
	cache := map[string]*netsim.RemoteDevice{}
	return func(name string) (Target, error) {
		if d, ok := cache[name]; ok {
			return d, nil
		}
		d, err := netsim.DialDevice(addr, name)
		if err != nil {
			return nil, err
		}
		t.Cleanup(func() { d.Close() })
		cache[name] = d
		return d, nil
	}
}

var _ Target = (*netsim.RemoteDevice)(nil)

func newRemoteFleet(t *testing.T, n int) (*netsim.Fleet, *Deployer, string) {
	t.Helper()
	fleet, _, _ := newTestFleet(t, n)
	srv, err := fleet.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return fleet, NewDeployer(remoteResolver(t, srv.Addr())), srv.Addr()
}

func TestRemoteDeploySimple(t *testing.T) {
	fleet, dep, _ := newRemoteFleet(t, 4)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Fatalf("failures: %+v", rep.Failed())
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if cfg != cfgs[d.Name()] {
			t.Errorf("%s not updated over TCP", d.Name())
		}
	}
}

func TestRemoteDryrunVendorSplit(t *testing.T) {
	fleet, dep, _ := newRemoteFleet(t, 2)
	diffs, err := dep.Dryrun(newConfigs(fleet, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The sentinel error survives the CLI boundary: vendor1 falls back to
	// emulated diff, vendor2 uses native compare.
	if !strings.Contains(diffs["dev00"], "- ") {
		t.Errorf("vendor1 emulated diff missing: %q", diffs["dev00"])
	}
	if !strings.Contains(diffs["dev01"], "+  mtu 9002;") {
		t.Errorf("vendor2 native diff missing: %q", diffs["dev01"])
	}
}

func TestRemoteErrNotSupportedIdentity(t *testing.T) {
	_, dep, _ := newRemoteFleet(t, 1)
	tgt, err := dep.Resolve("dev00") // vendor1
	if err != nil {
		t.Fatal(err)
	}
	if err := tgt.LoadConfig("interface ae0\n"); err != nil {
		t.Fatal(err)
	}
	_, err = tgt.DryrunDiff()
	if !errors.Is(err, netsim.ErrNotSupported) {
		t.Errorf("sentinel identity lost over CLI: %v", err)
	}
}

func TestRemoteAtomicRollback(t *testing.T) {
	fleet, dep, _ := newRemoteFleet(t, 3)
	cfgs := newConfigs(fleet, 2)
	d2, _ := fleet.Device("dev02")
	opts := Options{
		Atomic:      true,
		HealthCheck: func(tg Target, intended string) error { return nil },
		Review: func(device, diff string) bool {
			if device == "dev02" {
				// Device dies after its dryrun but before commit; with
				// sorted ordering its commit is last.
				d2.SetDown(true)
			}
			return true
		},
	}
	if _, err := dep.Deploy(cfgs, opts); err == nil {
		t.Fatal("atomic deployment should fail")
	}
	for _, name := range []string{"dev00", "dev01"} {
		d, _ := fleet.Device(name)
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back over TCP: %q", name, cfg)
		}
	}
}

func TestRemoteCommitConfirmExpiry(t *testing.T) {
	fleet, dep, _ := newRemoteFleet(t, 2)
	cfgs := newConfigs(fleet, 2)
	rep, err := dep.Deploy(cfgs, Options{ConfirmGrace: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !rep.Pending.Settled() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	// Device-native (vendor2) timer fires independently.
	d1, _ := fleet.Device("dev01")
	for d1.ConfirmPending() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, d := range fleet.Devices() {
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "9001") {
			t.Errorf("%s not rolled back after remote grace expiry: %q", d.Name(), cfg)
		}
	}
}

func TestRemoteDrainCheck(t *testing.T) {
	fleet, dep, _ := newRemoteFleet(t, 2)
	d, _ := fleet.Device("dev01")
	d.SetTrafficLoad(0.9)
	_, err := dep.InitialProvision(newConfigs(fleet, 2), Options{})
	if !errors.Is(err, ErrDrainRequired) {
		t.Errorf("drain check over TCP: want ErrDrainRequired, got %v", err)
	}
}
