package netsim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func newRemotePair(t *testing.T) (*Fleet, *RemoteDevice, *RemoteDevice) {
	t.Helper()
	f := NewFleet()
	d1, _ := f.AddDevice("psw1.pop1", Vendor1, "psw", "pop1")
	d1.SetTrafficLoad(0.25)
	f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	r1, err := DialDevice(srv.Addr(), "psw1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r1.Close() })
	r2, err := DialDevice(srv.Addr(), "pr1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r2.Close() })
	return f, r1, r2
}

func TestRemoteDeviceIdentity(t *testing.T) {
	_, r1, r2 := newRemotePair(t)
	if r1.Name() != "psw1.pop1" || r1.Vendor() != Vendor1 || r1.Role() != "psw" || r1.Site() != "pop1" {
		t.Errorf("identity = %s/%s/%s/%s", r1.Name(), r1.Vendor(), r1.Role(), r1.Site())
	}
	if r2.Vendor() != Vendor2 || r2.Role() != "pr" {
		t.Errorf("r2 identity = %s/%s", r2.Vendor(), r2.Role())
	}
	if got := r1.TrafficLoad(); got != 0.25 {
		t.Errorf("traffic = %v", got)
	}
	if !r1.Reachable() {
		t.Error("device should be reachable")
	}
	if r1.ConfirmPending() {
		t.Error("ConfirmPending over CLI is always false")
	}
}

func TestRemoteDeviceConfigLifecycle(t *testing.T) {
	f, r1, r2 := newRemotePair(t)
	if err := r1.LoadConfig("hostname psw1.pop1\ninterface et1/1\n"); err != nil {
		t.Fatal(err)
	}
	if err := r1.Commit(); err != nil {
		t.Fatal(err)
	}
	cfg, err := r1.RunningConfig()
	if err != nil || !strings.Contains(cfg, "interface et1/1") {
		t.Errorf("running config = %q, %v", cfg, err)
	}
	// Vendor1 native dryrun is unsupported; the sentinel survives the wire.
	if err := r1.LoadConfig("hostname psw1.pop1\ninterface et2/1\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := r1.DryrunDiff(); !errors.Is(err, ErrNotSupported) {
		t.Errorf("want ErrNotSupported over wire, got %v", err)
	}
	if err := r1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Rollback(); err != nil {
		t.Fatal(err)
	}
	cfg, _ = r1.RunningConfig()
	if !strings.Contains(cfg, "et1/1") {
		t.Errorf("rollback over wire failed: %q", cfg)
	}
	if err := r1.EraseConfig(); err != nil {
		t.Fatal(err)
	}
	cfg, _ = r1.RunningConfig()
	if cfg != "" {
		t.Errorf("erase over wire failed: %q", cfg)
	}
	// Vendor2 commit-confirmed + confirm over the wire.
	if err := r2.LoadConfig("ae0 {\n}\n"); err != nil {
		t.Fatal(err)
	}
	if err := r2.CommitConfirmed(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r2.Confirm(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond)
	cfg, _ = r2.RunningConfig()
	if !strings.Contains(cfg, "ae0") {
		t.Errorf("confirmed config lost: %q", cfg)
	}
	_ = f
}

func TestRemoteDeviceOperationalState(t *testing.T) {
	f, r1, _ := newRemotePair(t)
	d1, _ := f.Device("psw1.pop1")
	d2, _ := f.Device("pr1.pop1")
	d1.LoadConfig("interface et1/1\nrouter bgp 65001\n neighbor 10.0.0.1 remote-as 65000\n")
	d1.Commit()
	d2.LoadConfig("et-1/0/1 {\n}\n")
	d2.Commit()
	f.Wire("psw1.pop1", "et1/1", "pr1.pop1", "et-1/0/1")

	ifaces, err := r1.ShowInterfaces()
	if err != nil || len(ifaces) != 1 || ifaces[0].OperStatus != "up" {
		t.Errorf("interfaces over wire = %+v, %v", ifaces, err)
	}
	lldp, err := r1.ShowLLDPNeighbors()
	if err != nil || len(lldp) != 1 || lldp[0].NeighborDevice != "pr1.pop1" {
		t.Errorf("lldp over wire = %+v, %v", lldp, err)
	}
	bgp, err := r1.ShowBGPSummary()
	if err != nil || len(bgp) != 1 {
		t.Errorf("bgp over wire = %+v, %v", bgp, err)
	}
	v, err := r1.ShowVersion()
	if err != nil || v.Name != "psw1.pop1" || v.Vendor != "vendor1" {
		t.Errorf("version over wire = %+v, %v", v, err)
	}
	counters, err := r1.Counters()
	if err != nil || counters["cpu_util"] <= 0 {
		t.Errorf("counters over wire = %v, %v", counters, err)
	}
}

func TestRemoteDeviceDownMapsUnreachable(t *testing.T) {
	f, r1, _ := newRemotePair(t)
	d1, _ := f.Device("psw1.pop1")
	d1.SetDown(true)
	// device-info is out-of-band: still answers, reporting unreachable.
	if r1.Reachable() {
		t.Error("down device reported reachable")
	}
	_, err := r1.RunningConfig()
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("want ErrUnreachable over wire, got %v", err)
	}
	d1.SetDown(false)
	if !r1.Reachable() {
		t.Error("recovered device reported unreachable")
	}
}
