package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestBGPExactAddressMatch pins the fix for the substring false-positive:
// the old recompute used strings.Contains, so a session to 10.0.0.1 was
// established by any device whose config merely contained 10.0.0.12 (the
// peer address is a prefix of it). Matching is now by exact address
// token.
func TestBGPExactAddressMatch(t *testing.T) {
	f := NewFleet()
	a, _ := f.AddDevice("a", Vendor1, "psw", "s")
	b, _ := f.AddDevice("b", Vendor1, "psw", "s")

	if err := b.LoadConfig("interface et1/1\n ip addr 10.0.0.12/31\n"); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// a peers with 10.0.0.1 — a strict prefix of b's 10.0.0.12. No device
	// owns 10.0.0.1, so the session must stay Active.
	if err := a.LoadConfig("interface et1/1\n ip addr 10.0.0.13/31\nneighbor 10.0.0.1 remote-as 65000\n"); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	peers, err := a.ShowBGPSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].State != "Active" {
		t.Fatalf("session to unowned 10.0.0.1 = %+v, want Active (substring false-positive)", peers)
	}
	// The reference full pass agrees.
	f.RecomputeFull()
	peers, _ = a.ShowBGPSummary()
	if peers[0].State != "Active" {
		t.Fatalf("RecomputeFull: session = %+v, want Active", peers)
	}

	// Peering with the exactly-owned address establishes.
	if err := a.LoadConfig("interface et1/1\n ip addr 10.0.0.13/31\nneighbor 10.0.0.12 remote-as 65000\n"); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	peers, _ = a.ShowBGPSummary()
	if len(peers) != 1 || peers[0].State != "Established" {
		t.Fatalf("session to owned 10.0.0.12 = %+v, want Established", peers)
	}
}

// devSnap is the derived operational state of one device.
type devSnap struct {
	lldp  map[string]LLDPNeighbor
	links map[string]bool
	bgp   map[string]string
}

// snapshotFleet captures every device's derived state (LLDP, link
// oper-status, BGP session states) for equality comparison.
func snapshotFleet(f *Fleet) map[string]devSnap {
	out := make(map[string]devSnap)
	for _, d := range f.Devices() {
		d.mu.Lock()
		s := devSnap{
			lldp:  make(map[string]LLDPNeighbor, len(d.lldp)),
			links: make(map[string]bool, len(d.ifaces)),
			bgp:   make(map[string]string, len(d.bgpPeers)),
		}
		for k, v := range d.lldp {
			s.lldp[k] = v
		}
		for name, st := range d.ifaces {
			s.links[name] = st.operUp
		}
		for addr, p := range d.bgpPeers {
			s.bgp[addr] = p.State
		}
		d.mu.Unlock()
		out[d.Name()] = s
	}
	return out
}

// TestIncrementalMatchesFullRecompute drives seed-reproducible random
// event sequences — commits, wiring changes, manual drift, reachability
// flaps, reboots, linecard pulls — through the incremental engine and
// asserts, at every settle point (an event that flushes), that the state
// is a fixed point of the retained reference full pass: running
// RecomputeFull changes nothing.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			f := NewFleet()
			const nDev = 12
			devs := make([]*Device, nDev)
			for i := range devs {
				d, err := f.AddDevice(fmt.Sprintf("dev%02d", i), Vendor1, "psw", "s")
				if err != nil {
					t.Fatal(err)
				}
				devs[i] = d
			}
			ifaces := []string{"et1/1", "et1/2", "et2/1", "et2/2"}
			// Address pool with prefix collisions (10.0.0.1 vs 10.0.0.12
			// vs 10.0.0.102) so exact-token matching is exercised.
			addr := func() string { return fmt.Sprintf("10.0.0.%d", rng.Intn(20)) }

			randomConfig := func() string {
				cfg := ""
				for _, ifc := range ifaces {
					if rng.Intn(2) == 0 {
						cfg += fmt.Sprintf("interface %s\n ip addr %s/31\n", ifc, addr())
					}
				}
				for k := rng.Intn(3); k > 0; k-- {
					cfg += fmt.Sprintf("neighbor %s remote-as 65000\n", addr())
				}
				return cfg
			}

			check := func(step int) {
				t.Helper()
				before := snapshotFleet(f)
				f.RecomputeFull()
				after := snapshotFleet(f)
				if !reflect.DeepEqual(before, after) {
					for name := range before {
						if !reflect.DeepEqual(before[name], after[name]) {
							t.Errorf("step %d: %s diverged\n incremental: %+v\n full:        %+v",
								step, name, before[name], after[name])
						}
					}
					t.FailNow()
				}
			}

			for step := 0; step < 300; step++ {
				d := devs[rng.Intn(nDev)]
				switch ev := rng.Intn(10); ev {
				case 0, 1, 2: // commit a fresh config (flushes)
					if err := d.LoadConfig(randomConfig()); err != nil {
						continue // device down: no flush, no check
					}
					if err := d.Commit(); err != nil {
						continue
					}
					check(step)
				case 3, 4: // wire two random ports (flushes)
					z := devs[rng.Intn(nDev)]
					if z == d {
						continue
					}
					err := f.Wire(d.Name(), ifaces[rng.Intn(len(ifaces))],
						z.Name(), ifaces[rng.Intn(len(ifaces))])
					if err != nil {
						continue // port already cabled
					}
					check(step)
				case 5: // fiber cut (flushes)
					if f.Uncable(d.Name(), ifaces[rng.Intn(len(ifaces))]) {
						check(step)
					}
				case 6: // reachability flap (stale until next flush)
					d.SetDown(!d.Reachable())
				case 7: // out-of-band drift (stale until next flush)
					_ = d.ApplyManualChange("neighbor " + addr() + " remote-as 65001")
				case 8: // reboot (stale until next flush)
					d.Reboot()
				case 9: // linecard pull (stale until next flush)
					d.RemoveLinecard(1 + rng.Intn(2))
				}
			}
			// Settle any remaining dirt with a final commit and check.
			for _, d := range devs {
				d.SetDown(false)
			}
			if err := devs[0].LoadConfig(randomConfig()); err != nil {
				t.Fatal(err)
			}
			if err := devs[0].Commit(); err != nil {
				t.Fatal(err)
			}
			check(-1)
		})
	}
}

// TestRecomputeAllocsFlat is the allocation-regression guard for the
// incremental hot path: the cost of a single-device commit (parse +
// dirty-set recompute) must be bounded and must not scale with fleet
// size.
func TestRecomputeAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc guard skipped in -short")
	}
	measure := func(n int) float64 {
		f := buildRingFleet(t, n)
		d, _ := f.Device("dev000000")
		cfg := ringConfig(0, n)
		return testing.AllocsPerRun(50, func() {
			if err := d.LoadConfig(cfg); err != nil {
				t.Fatal(err)
			}
			if err := d.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := measure(64)
	large := measure(1024)
	// ~55 allocs today; 150 leaves headroom without hiding an O(n) slip.
	if small > 150 {
		t.Errorf("single-device commit at fleet=64: %v allocs, want <= 150", small)
	}
	if large > small*2+20 {
		t.Errorf("allocs scale with fleet size: fleet=64 %v, fleet=1024 %v", small, large)
	}
}
