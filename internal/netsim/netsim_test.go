package netsim

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

const v1Config = `hostname psw-a.pop1
interface ae0
 mtu 9192
 ip addr 10.0.0.0/31
 no shutdown
interface et1/1
 channel-group ae0
 no shutdown
interface et1/2
 channel-group ae0
 no shutdown
router bgp 65001
 neighbor 10.0.0.1 remote-as 65000
`

const v2Config = `system {
 host-name pr1.pop1;
}
interfaces {
ae0 {
 unit 0 {
  family inet {
   addr 10.0.0.1/31
  }
 }
}
replace: et-1/0/1 {
 gigether-options {
  802.3ad ae0;
 }
}
}
protocols {
 bgp {
  neighbor 10.0.0.0 {
  }
 }
}
`

func TestLoadCommitAndParse(t *testing.T) {
	d := NewDevice("psw-a.pop1", Vendor1, "psw", "pop1")
	if err := d.LoadConfig(v1Config); err != nil {
		t.Fatal(err)
	}
	if cfg, _ := d.RunningConfig(); cfg != "" {
		t.Error("running config should be empty before commit")
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	cfg, err := d.RunningConfig()
	if err != nil || cfg != v1Config {
		t.Errorf("running config mismatch: %v", err)
	}
	for _, want := range []string{"ae0", "et1/1", "et1/2"} {
		if !d.HasInterface(want) {
			t.Errorf("interface %s not parsed from config", want)
		}
	}
	peers, _ := d.ShowBGPSummary()
	if len(peers) != 1 || peers[0].PeerAddr != "10.0.0.1" || peers[0].Family != "v4" {
		t.Errorf("bgp peers = %+v", peers)
	}
}

func TestVendor2ConfigParse(t *testing.T) {
	d := NewDevice("pr1.pop1", Vendor2, "pr", "pop1")
	if err := d.LoadConfig(v2Config); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ae0", "et-1/0/1"} {
		if !d.HasInterface(want) {
			t.Errorf("interface %s not parsed from vendor2 config", want)
		}
	}
	peers, _ := d.ShowBGPSummary()
	if len(peers) != 1 || peers[0].PeerAddr != "10.0.0.0" {
		t.Errorf("bgp peers = %+v", peers)
	}
}

func TestVendor2SyntaxValidation(t *testing.T) {
	d := NewDevice("pr1", Vendor2, "pr", "pop1")
	if err := d.LoadConfig("interfaces {\nae0 {\n}\n"); err == nil {
		t.Error("unbalanced braces should be rejected")
	}
	if err := d.LoadConfig("}\n"); err == nil {
		t.Error("leading close brace should be rejected")
	}
}

func TestDryrunVendorSplit(t *testing.T) {
	d1 := NewDevice("a", Vendor1, "psw", "pop1")
	d1.LoadConfig("interface ae0\n")
	if _, err := d1.DryrunDiff(); err != ErrNotSupported {
		t.Errorf("vendor1 dryrun: want ErrNotSupported, got %v", err)
	}
	d2 := NewDevice("b", Vendor2, "pr", "pop1")
	d2.LoadConfig("ae0 {\n}\n")
	d2.Commit()
	d2.LoadConfig("ae0 {\n}\nae1 {\n}\n")
	diff, err := d2.DryrunDiff()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "+ ae1 {") {
		t.Errorf("dryrun diff = %q", diff)
	}
}

func TestRollback(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	d.LoadConfig("interface ae0\n")
	d.Commit()
	d.LoadConfig("interface ae1\n")
	d.Commit()
	if err := d.Rollback(); err != nil {
		t.Fatal(err)
	}
	cfg, _ := d.RunningConfig()
	if cfg != "interface ae0\n" {
		t.Errorf("config after rollback = %q", cfg)
	}
	if !d.HasInterface("ae0") || d.HasInterface("ae1") {
		t.Error("state not reparsed after rollback")
	}
	d.Rollback() // back to empty? history had one entry; now empty
	if err := d.Rollback(); err == nil {
		t.Error("rollback past history should fail")
	}
}

func TestCommitConfirmedExpiresAndRollsBack(t *testing.T) {
	d := NewDevice("b", Vendor2, "pr", "pop1")
	var msgs []SyslogMessage
	var mu sync.Mutex
	d.SetSyslogSink(func(m SyslogMessage) {
		mu.Lock()
		msgs = append(msgs, m)
		mu.Unlock()
	})
	d.LoadConfig("ae0 {\n}\n")
	d.Commit()
	d.LoadConfig("ae1 {\n}\n")
	if err := d.CommitConfirmed(30 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !d.ConfirmPending() {
		t.Error("confirm timer should be armed")
	}
	cfg, _ := d.RunningConfig()
	if !strings.Contains(cfg, "ae1") {
		t.Error("new config should be active during grace period")
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.ConfirmPending() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cfg, _ = d.RunningConfig()
	if !strings.Contains(cfg, "ae0") || strings.Contains(cfg, "ae1") {
		t.Errorf("config after expiry = %q, want rollback to ae0", cfg)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawRollback bool
	for _, m := range msgs {
		if strings.Contains(m.Text, "CONFIG_ROLLBACK") {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Error("rollback syslog not emitted")
	}
}

func TestCommitConfirmedConfirmed(t *testing.T) {
	d := NewDevice("b", Vendor2, "pr", "pop1")
	d.LoadConfig("ae0 {\n}\n")
	d.Commit()
	d.LoadConfig("ae1 {\n}\n")
	if err := d.CommitConfirmed(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := d.Confirm(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	cfg, _ := d.RunningConfig()
	if !strings.Contains(cfg, "ae1") {
		t.Errorf("confirmed config rolled back anyway: %q", cfg)
	}
	if err := d.Confirm(); err == nil {
		t.Error("double confirm should fail")
	}
	// Vendor1 has no native commit-confirmed.
	d1 := NewDevice("a", Vendor1, "psw", "pop1")
	d1.LoadConfig("interface ae0\n")
	if err := d1.CommitConfirmed(time.Second); err != ErrNotSupported {
		t.Errorf("vendor1 commit-confirmed: want ErrNotSupported, got %v", err)
	}
}

func TestUnreachableDevice(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	d.SetDown(true)
	if _, err := d.RunningConfig(); err == nil {
		t.Error("operations on a down device should fail")
	}
	if err := d.LoadConfig("x"); err == nil {
		t.Error("LoadConfig on a down device should fail")
	}
	d.SetDown(false)
	if err := d.LoadConfig("interface ae0\n"); err != nil {
		t.Error(err)
	}
}

func TestManualChangeEmitsSyslog(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	var got []SyslogMessage
	var mu sync.Mutex
	d.SetSyslogSink(func(m SyslogMessage) { mu.Lock(); got = append(got, m); mu.Unlock() })
	d.LoadConfig("interface ae0\n")
	d.Commit()
	if err := d.ApplyManualChange("snmp-server community public"); err != nil {
		t.Fatal(err)
	}
	cfg, _ := d.RunningConfig()
	if !strings.Contains(cfg, "snmp-server community public") {
		t.Error("manual change not applied")
	}
	mu.Lock()
	defer mu.Unlock()
	var sawChange int
	for _, m := range got {
		if strings.Contains(m.Text, "CONFIG_CHANGED") {
			sawChange++
		}
	}
	if sawChange < 2 { // commit + manual change
		t.Errorf("CONFIG_CHANGED syslogs = %d, want >= 2", sawChange)
	}
}

func TestFleetWiringDrivesLinkState(t *testing.T) {
	f := NewFleet()
	a, _ := f.AddDevice("psw-a.pop1", Vendor1, "psw", "pop1")
	z, _ := f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	if _, err := f.AddDevice("psw-a.pop1", Vendor1, "psw", "pop1"); err == nil {
		t.Error("duplicate device should fail")
	}
	a.LoadConfig("interface et1/1\n")
	a.Commit()
	// Cable before the far side has config: link stays down.
	if err := f.Wire("psw-a.pop1", "et1/1", "pr1.pop1", "et-1/0/1"); err != nil {
		t.Fatal(err)
	}
	ifs, _ := a.ShowInterfaces()
	if ifs[0].OperStatus != "down" {
		t.Error("link should be down while far side is unconfigured")
	}
	// Far side commits its config: link comes up on both ends.
	z.LoadConfig("et-1/0/1 {\n}\n")
	z.Commit()
	ifs, _ = a.ShowInterfaces()
	if ifs[0].OperStatus != "up" {
		t.Error("link should come up once both ends are configured")
	}
	// LLDP reflects the adjacency.
	nbrs, _ := a.ShowLLDPNeighbors()
	if len(nbrs) != 1 || nbrs[0].NeighborDevice != "pr1.pop1" || nbrs[0].NeighborInterface != "et-1/0/1" {
		t.Errorf("lldp = %+v", nbrs)
	}
	nbrs, _ = z.ShowLLDPNeighbors()
	if len(nbrs) != 1 || nbrs[0].NeighborDevice != "psw-a.pop1" {
		t.Errorf("far side lldp = %+v", nbrs)
	}
	// Device failure takes the link down.
	z.SetDown(true)
	f.Recompute()
	ifs, _ = a.ShowInterfaces()
	if ifs[0].OperStatus != "up" {
		// a's view: link down because far side is down
	}
	if ifs[0].OperStatus == "up" {
		t.Error("link should drop when the far device dies")
	}
	// Fiber cut.
	z.SetDown(false)
	f.Recompute()
	if !f.Uncable("psw-a.pop1", "et1/1") {
		t.Fatal("uncable failed")
	}
	ifs, _ = a.ShowInterfaces()
	if ifs[0].OperStatus != "down" {
		t.Error("link should be down after uncabling")
	}
	if f.Uncable("psw-a.pop1", "et1/1") {
		t.Error("double uncable should return false")
	}
}

func TestWireValidation(t *testing.T) {
	f := NewFleet()
	f.AddDevice("a", Vendor1, "psw", "s")
	f.AddDevice("b", Vendor1, "psw", "s")
	f.AddDevice("c", Vendor1, "psw", "s")
	if err := f.Wire("a", "et1/1", "missing", "et1/1"); err == nil {
		t.Error("unknown device should fail")
	}
	if err := f.Wire("a", "et1/1", "b", "et1/1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Wire("c", "et9/9", "a", "et1/1"); err == nil {
		t.Error("double-cabling a port should fail")
	}
}

func TestBGPStateFollowsConfigs(t *testing.T) {
	f := NewFleet()
	a, _ := f.AddDevice("a", Vendor1, "psw", "pop1")
	b, _ := f.AddDevice("b", Vendor1, "pr", "pop1")
	a.LoadConfig("interface ae0\n ip addr 10.0.0.0/31\nrouter bgp 65001\n neighbor 10.0.0.1 remote-as 65000\n")
	a.Commit()
	peers, _ := a.ShowBGPSummary()
	if peers[0].State != "Active" {
		t.Errorf("session should be Active before far side exists, got %s", peers[0].State)
	}
	b.LoadConfig("interface ae0\n ip addr 10.0.0.1/31\nrouter bgp 65000\n neighbor 10.0.0.0 remote-as 65001\n")
	b.Commit()
	peers, _ = a.ShowBGPSummary()
	if peers[0].State != "Established" {
		t.Errorf("session should Establish once far side configures the address, got %s", peers[0].State)
	}
}

func TestRebootAndLinecardFailures(t *testing.T) {
	f := NewFleet()
	d, _ := f.AddDevice("a", Vendor1, "psw", "pop1")
	var msgs []SyslogMessage
	var mu sync.Mutex
	d.SetSyslogSink(func(m SyslogMessage) { mu.Lock(); msgs = append(msgs, m); mu.Unlock() })
	d.LoadConfig("interface et1/1\ninterface et2/1\n")
	d.Commit()
	v1, _ := d.ShowVersion()
	time.Sleep(10 * time.Millisecond)
	d.Reboot()
	v2, _ := d.ShowVersion()
	if v2.UptimeS > v1.UptimeS+1 {
		t.Errorf("uptime not reset: %d -> %d", v1.UptimeS, v2.UptimeS)
	}
	d.RemoveLinecard(1)
	mu.Lock()
	defer mu.Unlock()
	var sawReboot, sawLinecard bool
	for _, m := range msgs {
		if strings.Contains(m.Text, "DEVICE_REBOOT") {
			sawReboot = true
		}
		if strings.Contains(m.Text, "LINECARD_REMOVED") {
			sawLinecard = true
		}
	}
	if !sawReboot || !sawLinecard {
		t.Errorf("failure syslogs missing: reboot=%v linecard=%v", sawReboot, sawLinecard)
	}
}

func TestCountersAdvance(t *testing.T) {
	f := NewFleet()
	a, _ := f.AddDevice("a", Vendor1, "psw", "pop1")
	b, _ := f.AddDevice("b", Vendor1, "psw", "pop1")
	a.LoadConfig("interface et1/1\n")
	a.Commit()
	b.LoadConfig("interface et1/1\n")
	b.Commit()
	f.Wire("a", "et1/1", "b", "et1/1")
	ifs1, _ := a.ShowInterfaces()
	time.Sleep(20 * time.Millisecond)
	ifs2, _ := a.ShowInterfaces()
	if ifs2[0].InOctets <= ifs1[0].InOctets {
		t.Errorf("octets did not advance: %d -> %d", ifs1[0].InOctets, ifs2[0].InOctets)
	}
	c, err := a.Counters()
	if err != nil || c["cpu_util"] <= 0 {
		t.Errorf("counters = %v, %v", c, err)
	}
}

func TestSyslogFormatRoundTrip(t *testing.T) {
	in := SyslogMessage{
		Severity: 4, Host: "pr1.pop1", App: "link",
		Text: "LINK_STATE: Interface ae0 changed state to down",
		Time: time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	}
	out, err := ParseSyslog(in.Format())
	if err != nil {
		t.Fatal(err)
	}
	if out.Severity != in.Severity || out.Host != in.Host || out.App != in.App || out.Text != in.Text || !out.Time.Equal(in.Time) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
	if _, err := ParseSyslog("garbage"); err == nil {
		t.Error("malformed line should fail")
	}
}

// Property: formatting then parsing preserves severity for all severities
// and arbitrary single-line text.
func TestQuickSyslogRoundTrip(t *testing.T) {
	f := func(sev uint8, text string) bool {
		if strings.ContainsAny(text, "\n\r") {
			return true
		}
		in := SyslogMessage{
			Severity: int(sev % 8), Host: "h", App: "app",
			Text: text, Time: time.Unix(1700000000, 0),
		}
		out, err := ParseSyslog(in.Format())
		return err == nil && out.Severity == in.Severity && out.Text == in.Text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUDPSyslogDelivery(t *testing.T) {
	pc, err := listenUDP(t)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 64<<10)
		n, _, err := pc.ReadFrom(buf)
		if err == nil {
			got <- string(buf[:n])
		}
	}()
	sink, err := UDPSyslogSink(pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDevice("a", Vendor1, "psw", "pop1")
	d.SetSyslogSink(sink)
	d.LoadConfig("interface ae0\n")
	d.Commit()
	select {
	case line := <-got:
		m, err := ParseSyslog(line)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if m.Host != "a" || !strings.Contains(m.Text, "CONFIG_CHANGED") {
			t.Errorf("message = %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no syslog datagram received")
	}
}

func TestMgmtServerEndToEnd(t *testing.T) {
	f := NewFleet()
	d, _ := f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	_ = d
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialMgmt(srv.Addr(), "pr1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadConfig(v2Config); err != nil {
		t.Fatal(err)
	}
	if diff, err := c.Do("compare"); err != nil || !strings.Contains(diff, "+ ae0 {") {
		t.Errorf("compare = %q, %v", diff, err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	cfg, err := c.RunningConfig()
	if err != nil || cfg != v2Config {
		t.Errorf("running config over TCP mismatch: %v", err)
	}
	ifs, err := c.ShowInterfaces()
	if err != nil || len(ifs) != 2 {
		t.Errorf("interfaces over TCP = %+v, %v", ifs, err)
	}
	if _, err := c.Do("show bogus"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, err := DialMgmt(srv.Addr(), "nonexistent"); err == nil {
		t.Error("selecting unknown device should fail")
	}
}

func TestMgmtNoDeviceSelected(t *testing.T) {
	f := NewFleet()
	f.AddDevice("a", Vendor1, "psw", "pop1")
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &MgmtClient{}
	_ = c
	conn, err := dialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := newRawClient(conn)
	if _, err := cl.Do("show version"); err == nil {
		t.Error("command without device selection should fail")
	}
}

// TestInjectRunningConfig: the out-of-band mutation replaces the running
// config directly (no candidate/commit), reparses it, and emits a
// CONFIG_CHANGED syslog so monitoring can notice.
func TestInjectRunningConfig(t *testing.T) {
	f := NewFleet()
	d, _ := f.AddDevice("psw1.pop1", Vendor1, "psw", "pop1")
	if err := d.LoadConfig("hostname psw1.pop1\ninterface et1/1\n"); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var msgs []SyslogMessage
	d.SetSyslogSink(func(m SyslogMessage) { mu.Lock(); msgs = append(msgs, m); mu.Unlock() })

	injected := "hostname psw1.pop1\ninterface et1/1\ninterface et9/9\n"
	if err := d.InjectRunningConfig(injected); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.RunningConfig(); got != injected {
		t.Errorf("running = %q, want injected config", got)
	}
	// The injected config was reparsed into device state.
	if !d.HasInterface("et9/9") {
		t.Error("injected interface not parsed")
	}
	mu.Lock()
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Text, "CONFIG_CHANGED") && strings.Contains(m.Text, "out-of-band") {
			found = true
		}
	}
	mu.Unlock()
	if !found {
		t.Errorf("no out-of-band CONFIG_CHANGED syslog: %v", msgs)
	}
	// The previous running config is in history: rollback restores it.
	if err := d.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.RunningConfig(); got != "hostname psw1.pop1\ninterface et1/1\n" {
		t.Errorf("rollback after injection = %q", got)
	}
	// Unreachable devices cannot be mutated.
	d.SetDown(true)
	if err := d.InjectRunningConfig("x\n"); err == nil {
		t.Error("InjectRunningConfig on a down device must error")
	}
}
