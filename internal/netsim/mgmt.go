package netsim

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// The management CLI: every device can expose a TCP endpoint speaking a
// line-oriented protocol, the transport behind Robotron's CLI deployment
// and the CLI monitoring engine (§5.3, §5.4.2, Table 2).
//
// Requests are single lines; "load-config <n>" is followed by n raw bytes.
// Responses are either "OK <n>\n" followed by n bytes of body, or
// "ERR <message>\n". Structured show commands return JSON bodies.

// MgmtServer serves the management CLI for one fleet.
type MgmtServer struct {
	fleet *Fleet
	ln    net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// ServeMgmt starts a management endpoint for the whole fleet on addr
// (e.g. "127.0.0.1:0"); clients select a device with the "device <name>"
// command. Returns the server; Addr reports the bound address.
func (f *Fleet) ServeMgmt(addr string) (*MgmtServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MgmtServer{fleet: f, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *MgmtServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its sessions.
func (s *MgmtServer) Close() {
	s.mu.Lock()
	s.done = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *MgmtServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.session(conn)
	}
}

func (s *MgmtServer) session(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	var dev *Device
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == "quit" {
			writeOK(conn, "bye\n")
			return
		}
		if name, ok := strings.CutPrefix(line, "device "); ok {
			d, found := s.fleet.Device(strings.TrimSpace(name))
			if !found {
				writeErr(conn, fmt.Sprintf("unknown device %q", name))
				continue
			}
			dev = d
			writeOK(conn, "selected "+dev.Name()+"\n")
			continue
		}
		if dev == nil {
			writeErr(conn, "no device selected (use: device <name>)")
			continue
		}
		if s.dispatch(conn, r, dev, line) {
			return // injected connection drop: session is gone
		}
	}
}

// dispatch executes one command; it returns true when an injected fault
// dropped the connection (the session must end without a reply, exactly
// what a mid-commit TCP RST looks like to the client).
func (s *MgmtServer) dispatch(w net.Conn, r *bufio.Reader, dev *Device, line string) (dropped bool) {
	// replyErr renders a device error onto the wire. Injected
	// connection drops close the socket with no reply at all; injected
	// garbles corrupt the response framing so the client reads junk.
	replyErr := func(err error) {
		switch {
		case errors.Is(err, ErrConnDropped):
			w.Close()
			dropped = true
		case errors.Is(err, ErrGarbledReply):
			fmt.Fprintf(w, "\x15GARBLED\x15\n")
		default:
			writeErr(w, err.Error())
		}
	}
	reply := func(body string, err error) {
		if err != nil {
			replyErr(err)
			return
		}
		writeOK(w, body)
	}
	replyJSON := func(v any, err error) {
		if err != nil {
			replyErr(err)
			return
		}
		b, merr := json.Marshal(v)
		if merr != nil {
			writeErr(w, merr.Error())
			return
		}
		writeOK(w, string(b)+"\n")
	}
	switch {
	case line == "show device-info":
		// Served even when the device is down: the management plane is
		// out-of-band, and health checks need the reachability bit.
		replyJSON(map[string]any{
			"Name": dev.Name(), "Vendor": string(dev.Vendor()),
			"Role": dev.Role(), "Site": dev.Site(),
			"Traffic": dev.TrafficLoad(), "Reachable": dev.Reachable(),
		}, nil)
	case line == "show running-config":
		cfg, err := dev.RunningConfig()
		reply(cfg, err)
	case line == "show interfaces":
		v, err := dev.ShowInterfaces()
		replyJSON(v, err)
	case line == "show lldp neighbors":
		v, err := dev.ShowLLDPNeighbors()
		replyJSON(v, err)
	case line == "show bgp summary":
		v, err := dev.ShowBGPSummary()
		replyJSON(v, err)
	case line == "show version":
		v, err := dev.ShowVersion()
		replyJSON(v, err)
	case line == "show counters":
		v, err := dev.Counters()
		replyJSON(v, err)
	case strings.HasPrefix(line, "load-config "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "load-config "))
		if err != nil || n < 0 || n > 16<<20 {
			writeErr(w, "bad length")
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			writeErr(w, "short config body: "+err.Error())
			return
		}
		reply("loaded\n", dev.LoadConfig(string(buf)))
	case line == "compare":
		diff, err := dev.DryrunDiff()
		reply(diff, err)
	case line == "discard":
		reply("discarded\n", dev.DiscardCandidate())
	case line == "commit":
		reply("committed\n", dev.Commit())
	case strings.HasPrefix(line, "commit-confirmed-ms "):
		ms, err := strconv.Atoi(strings.TrimPrefix(line, "commit-confirmed-ms "))
		if err != nil || ms <= 0 {
			writeErr(w, "bad grace period")
			return
		}
		reply("committed (pending confirmation)\n", dev.CommitConfirmed(time.Duration(ms)*time.Millisecond))
	case strings.HasPrefix(line, "commit-confirmed "):
		secs, err := strconv.Atoi(strings.TrimPrefix(line, "commit-confirmed "))
		if err != nil || secs <= 0 {
			writeErr(w, "bad grace period")
			return
		}
		reply("committed (pending confirmation)\n", dev.CommitConfirmed(time.Duration(secs)*time.Second))
	case line == "confirm":
		reply("confirmed\n", dev.Confirm())
	case line == "rollback":
		reply("rolled back\n", dev.Rollback())
	case line == "erase":
		reply("erased\n", dev.EraseConfig())
	default:
		writeErr(w, fmt.Sprintf("unknown command %q", line))
	}
	return dropped
}

func writeOK(w io.Writer, body string) {
	fmt.Fprintf(w, "OK %d\n%s", len(body), body)
}

func writeErr(w io.Writer, msg string) {
	msg = strings.ReplaceAll(msg, "\n", " ")
	fmt.Fprintf(w, "ERR %s\n", msg)
}

// ErrTimeout marks a management operation that exceeded the client's
// per-operation deadline. Like a connection drop, a timed-out commit is
// ambiguous: the device may or may not have applied it.
var ErrTimeout = fmt.Errorf("netsim: management operation timed out")

// DefaultOpTimeout bounds each management operation: a stalled server
// must surface as a classifiable timeout, never hang the caller.
const DefaultOpTimeout = 5 * time.Second

// MgmtClient is a client-side management session over TCP.
type MgmtClient struct {
	mu        sync.Mutex
	conn      net.Conn
	r         *bufio.Reader
	addr      string // non-empty: the session can redial after a drop
	device    string
	broken    bool          // stream desynced (drop/timeout); redial before reuse
	opTimeout time.Duration // per-operation deadline; 0 disables
}

// DialMgmt connects to a fleet management endpoint and selects a device.
func DialMgmt(addr, device string) (*MgmtClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &MgmtClient{
		conn: conn, r: bufio.NewReader(conn),
		addr: addr, device: device, opTimeout: DefaultOpTimeout,
	}
	if _, err := c.Do("device " + device); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// SetOpTimeout changes the per-operation deadline; 0 disables it.
func (c *MgmtClient) SetOpTimeout(d time.Duration) {
	c.mu.Lock()
	c.opTimeout = d
	c.mu.Unlock()
}

// ensureLocked redials a broken session when the client knows its
// endpoint; after a drop or timeout the old stream cannot be trusted to
// be reply-aligned.
func (c *MgmtClient) ensureLocked() error {
	if !c.broken {
		return nil
	}
	if c.addr == "" {
		return fmt.Errorf("%w: session broken and not redialable", ErrConnDropped)
	}
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("%w: redial: %v", ErrConnDropped, err)
	}
	old := c.conn
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.broken = false
	if old != nil {
		old.Close()
	}
	if c.device != "" {
		if _, err := c.doLocked("device "+c.device, ""); err != nil {
			return err
		}
	}
	return nil
}

// Do sends one command line and returns the response body.
func (c *MgmtClient) Do(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return "", err
	}
	return c.doLocked(cmd, "")
}

// DoWithBody sends a command followed by a raw payload (load-config).
func (c *MgmtClient) DoWithBody(cmd, body string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return "", err
	}
	return c.doLocked(cmd, body)
}

func (c *MgmtClient) doLocked(cmd, body string) (string, error) {
	if c.opTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if _, err := fmt.Fprintf(c.conn, "%s\n%s", cmd, body); err != nil {
		return "", c.opErr(err)
	}
	out, err := c.readReply()
	return out, c.opErr(err)
}

// opErr classifies a transport error and marks the session broken when
// the byte stream can no longer be trusted.
func (c *MgmtClient) opErr(err error) error {
	if err == nil {
		return nil
	}
	mapped := wrapNetErr(err)
	if errors.Is(mapped, ErrConnDropped) || errors.Is(mapped, ErrTimeout) ||
		errors.Is(mapped, ErrGarbledReply) {
		c.broken = true
	}
	return mapped
}

// wrapNetErr restores sentinel identity for raw transport errors.
func wrapNetErr(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) {
		return fmt.Errorf("%w: %v", ErrConnDropped, err)
	}
	return err
}

func (c *MgmtClient) readReply() (string, error) {
	header, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	header = strings.TrimRight(header, "\n")
	if msg, ok := strings.CutPrefix(header, "ERR "); ok {
		return "", fmt.Errorf("netsim: %s", msg)
	}
	lenStr, ok := strings.CutPrefix(header, "OK ")
	if !ok {
		return "", fmt.Errorf("%w: malformed reply %q", ErrGarbledReply, header)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 {
		return "", fmt.Errorf("%w: malformed reply length %q", ErrGarbledReply, lenStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// LoadConfig stages a candidate config over the session.
func (c *MgmtClient) LoadConfig(cfg string) error {
	_, err := c.DoWithBody(fmt.Sprintf("load-config %d", len(cfg)), cfg)
	return err
}

// RunningConfig fetches the running config.
func (c *MgmtClient) RunningConfig() (string, error) {
	return c.Do("show running-config")
}

// Commit activates the candidate config.
func (c *MgmtClient) Commit() error {
	_, err := c.Do("commit")
	return err
}

// ShowInterfaces fetches interface status.
func (c *MgmtClient) ShowInterfaces() ([]IfaceStatus, error) {
	body, err := c.Do("show interfaces")
	if err != nil {
		return nil, err
	}
	var out []IfaceStatus
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close ends the session.
func (c *MgmtClient) Close() error { return c.conn.Close() }
