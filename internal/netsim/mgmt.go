package netsim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The management CLI: every device can expose a TCP endpoint speaking a
// line-oriented protocol, the transport behind Robotron's CLI deployment
// and the CLI monitoring engine (§5.3, §5.4.2, Table 2).
//
// Requests are single lines; "load-config <n>" is followed by n raw bytes.
// Responses are either "OK <n>\n" followed by n bytes of body, or
// "ERR <message>\n". Structured show commands return JSON bodies.

// MgmtServer serves the management CLI for one fleet.
type MgmtServer struct {
	fleet *Fleet
	ln    net.Listener
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
	wg    sync.WaitGroup
}

// ServeMgmt starts a management endpoint for the whole fleet on addr
// (e.g. "127.0.0.1:0"); clients select a device with the "device <name>"
// command. Returns the server; Addr reports the bound address.
func (f *Fleet) ServeMgmt(addr string) (*MgmtServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &MgmtServer{fleet: f, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *MgmtServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its sessions.
func (s *MgmtServer) Close() {
	s.mu.Lock()
	s.done = true
	s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *MgmtServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.session(conn)
	}
}

func (s *MgmtServer) session(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	var dev *Device
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if line == "quit" {
			writeOK(conn, "bye\n")
			return
		}
		if name, ok := strings.CutPrefix(line, "device "); ok {
			d, found := s.fleet.Device(strings.TrimSpace(name))
			if !found {
				writeErr(conn, fmt.Sprintf("unknown device %q", name))
				continue
			}
			dev = d
			writeOK(conn, "selected "+dev.Name()+"\n")
			continue
		}
		if dev == nil {
			writeErr(conn, "no device selected (use: device <name>)")
			continue
		}
		s.dispatch(conn, r, dev, line)
	}
}

func (s *MgmtServer) dispatch(w io.Writer, r *bufio.Reader, dev *Device, line string) {
	reply := func(body string, err error) {
		if err != nil {
			writeErr(w, err.Error())
			return
		}
		writeOK(w, body)
	}
	replyJSON := func(v any, err error) {
		if err != nil {
			writeErr(w, err.Error())
			return
		}
		b, merr := json.Marshal(v)
		if merr != nil {
			writeErr(w, merr.Error())
			return
		}
		writeOK(w, string(b)+"\n")
	}
	switch {
	case line == "show device-info":
		// Served even when the device is down: the management plane is
		// out-of-band, and health checks need the reachability bit.
		replyJSON(map[string]any{
			"Name": dev.Name(), "Vendor": string(dev.Vendor()),
			"Role": dev.Role(), "Site": dev.Site(),
			"Traffic": dev.TrafficLoad(), "Reachable": dev.Reachable(),
		}, nil)
	case line == "show running-config":
		cfg, err := dev.RunningConfig()
		reply(cfg, err)
	case line == "show interfaces":
		v, err := dev.ShowInterfaces()
		replyJSON(v, err)
	case line == "show lldp neighbors":
		v, err := dev.ShowLLDPNeighbors()
		replyJSON(v, err)
	case line == "show bgp summary":
		v, err := dev.ShowBGPSummary()
		replyJSON(v, err)
	case line == "show version":
		v, err := dev.ShowVersion()
		replyJSON(v, err)
	case line == "show counters":
		v, err := dev.Counters()
		replyJSON(v, err)
	case strings.HasPrefix(line, "load-config "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "load-config "))
		if err != nil || n < 0 || n > 16<<20 {
			writeErr(w, "bad length")
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			writeErr(w, "short config body: "+err.Error())
			return
		}
		reply("loaded\n", dev.LoadConfig(string(buf)))
	case line == "compare":
		diff, err := dev.DryrunDiff()
		reply(diff, err)
	case line == "discard":
		reply("discarded\n", dev.DiscardCandidate())
	case line == "commit":
		reply("committed\n", dev.Commit())
	case strings.HasPrefix(line, "commit-confirmed-ms "):
		ms, err := strconv.Atoi(strings.TrimPrefix(line, "commit-confirmed-ms "))
		if err != nil || ms <= 0 {
			writeErr(w, "bad grace period")
			return
		}
		reply("committed (pending confirmation)\n", dev.CommitConfirmed(time.Duration(ms)*time.Millisecond))
	case strings.HasPrefix(line, "commit-confirmed "):
		secs, err := strconv.Atoi(strings.TrimPrefix(line, "commit-confirmed "))
		if err != nil || secs <= 0 {
			writeErr(w, "bad grace period")
			return
		}
		reply("committed (pending confirmation)\n", dev.CommitConfirmed(time.Duration(secs)*time.Second))
	case line == "confirm":
		reply("confirmed\n", dev.Confirm())
	case line == "rollback":
		reply("rolled back\n", dev.Rollback())
	case line == "erase":
		reply("erased\n", dev.EraseConfig())
	default:
		writeErr(w, fmt.Sprintf("unknown command %q", line))
	}
}

func writeOK(w io.Writer, body string) {
	fmt.Fprintf(w, "OK %d\n%s", len(body), body)
}

func writeErr(w io.Writer, msg string) {
	msg = strings.ReplaceAll(msg, "\n", " ")
	fmt.Fprintf(w, "ERR %s\n", msg)
}

// MgmtClient is a client-side management session over TCP.
type MgmtClient struct {
	conn net.Conn
	r    *bufio.Reader
	mu   sync.Mutex
}

// DialMgmt connects to a fleet management endpoint and selects a device.
func DialMgmt(addr, device string) (*MgmtClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &MgmtClient{conn: conn, r: bufio.NewReader(conn)}
	if _, err := c.Do("device " + device); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Do sends one command line and returns the response body.
func (c *MgmtClient) Do(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	return c.readReply()
}

// DoWithBody sends a command followed by a raw payload (load-config).
func (c *MgmtClient) DoWithBody(cmd, body string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n%s", cmd, body); err != nil {
		return "", err
	}
	return c.readReply()
}

func (c *MgmtClient) readReply() (string, error) {
	header, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	header = strings.TrimRight(header, "\n")
	if msg, ok := strings.CutPrefix(header, "ERR "); ok {
		return "", fmt.Errorf("netsim: %s", msg)
	}
	lenStr, ok := strings.CutPrefix(header, "OK ")
	if !ok {
		return "", fmt.Errorf("netsim: malformed reply %q", header)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 {
		return "", fmt.Errorf("netsim: malformed reply length %q", lenStr)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// LoadConfig stages a candidate config over the session.
func (c *MgmtClient) LoadConfig(cfg string) error {
	_, err := c.DoWithBody(fmt.Sprintf("load-config %d", len(cfg)), cfg)
	return err
}

// RunningConfig fetches the running config.
func (c *MgmtClient) RunningConfig() (string, error) {
	return c.Do("show running-config")
}

// Commit activates the candidate config.
func (c *MgmtClient) Commit() error {
	_, err := c.Do("commit")
	return err
}

// ShowInterfaces fetches interface status.
func (c *MgmtClient) ShowInterfaces() ([]IfaceStatus, error) {
	body, err := c.Do("show interfaces")
	if err != nil {
		return nil, err
	}
	var out []IfaceStatus
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close ends the session.
func (c *MgmtClient) Close() error { return c.conn.Close() }
