package netsim

import (
	"bufio"
	"net"
	"testing"
	"time"
)

func listenUDP(t *testing.T) (net.PacketConn, error) {
	t.Helper()
	return net.ListenPacket("udp", "127.0.0.1:0")
}

func dialTCP(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func newRawClient(conn net.Conn) *MgmtClient {
	return &MgmtClient{conn: conn, r: bufio.NewReader(conn)}
}
