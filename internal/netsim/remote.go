package netsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// RemoteDevice is a management session to a device reached over the TCP
// CLI rather than in process — the transport Robotron's deployment and
// CLI-engine monitoring actually use in production. It implements the
// same method set as *Device (and therefore deploy.Target and
// monitor.DeviceAPI), translating calls into protocol commands and
// mapping the device's error strings back to sentinel errors.
type RemoteDevice struct {
	c    *MgmtClient
	info deviceInfo
}

// deviceInfo is the JSON body of "show device-info".
type deviceInfo struct {
	Name      string
	Vendor    string
	Role      string
	Site      string
	Traffic   float64
	Reachable bool
}

// DialDevice opens a management session to one device of a fleet served
// at addr.
func DialDevice(addr, device string) (*RemoteDevice, error) {
	c, err := DialMgmt(addr, device)
	if err != nil {
		return nil, err
	}
	r := &RemoteDevice{c: c}
	if err := r.refreshInfo(); err != nil {
		c.Close()
		return nil, err
	}
	return r, nil
}

func (r *RemoteDevice) refreshInfo() error {
	body, err := r.c.Do("show device-info")
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(body), &r.info)
}

// mapErr restores sentinel error identity across the CLI boundary, the
// way a real driver classifies vendor error strings. Transport-level
// errors (drops, timeouts, garbled frames) arrive already wrapped by the
// client; device-side errors arrive as ERR strings and are re-matched.
func mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrConnDropped) || errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrGarbledReply) {
		return err
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not supported"):
		return fmt.Errorf("%w: %s", ErrNotSupported, msg)
	case strings.Contains(msg, "unreachable"):
		return fmt.Errorf("%w: %s", ErrUnreachable, msg)
	case strings.Contains(msg, "injected transient"):
		return fmt.Errorf("%w: %s", ErrInjectedTransient, msg)
	case strings.Contains(msg, "connection dropped"):
		return fmt.Errorf("%w: %s", ErrConnDropped, msg)
	case strings.Contains(msg, "timed out"):
		return fmt.Errorf("%w: %s", ErrTimeout, msg)
	case strings.Contains(msg, "garbled"):
		return fmt.Errorf("%w: %s", ErrGarbledReply, msg)
	}
	return err
}

// Name returns the device hostname.
func (r *RemoteDevice) Name() string { return r.info.Name }

// Vendor returns the device's vendor personality.
func (r *RemoteDevice) Vendor() Vendor { return Vendor(r.info.Vendor) }

// Role returns the device role.
func (r *RemoteDevice) Role() string { return r.info.Role }

// Site returns the device's site.
func (r *RemoteDevice) Site() string { return r.info.Site }

// TrafficLoad returns the device's offered load at last refresh.
func (r *RemoteDevice) TrafficLoad() float64 {
	if err := r.refreshInfo(); err != nil {
		return 0
	}
	return r.info.Traffic
}

// Reachable probes the device through the session.
func (r *RemoteDevice) Reachable() bool {
	body, err := r.c.Do("show device-info")
	if err != nil {
		return false
	}
	var info deviceInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		return false
	}
	return info.Reachable
}

// RunningConfig fetches the running config.
func (r *RemoteDevice) RunningConfig() (string, error) {
	out, err := r.c.Do("show running-config")
	return out, mapErr(err)
}

// LoadConfig stages a candidate configuration.
func (r *RemoteDevice) LoadConfig(cfg string) error {
	return mapErr(r.c.LoadConfig(cfg))
}

// DryrunDiff runs the device-native compare (ErrNotSupported on vendor1).
func (r *RemoteDevice) DryrunDiff() (string, error) {
	out, err := r.c.Do("compare")
	return out, mapErr(err)
}

// DiscardCandidate drops the staged candidate configuration.
func (r *RemoteDevice) DiscardCandidate() error {
	_, err := r.c.Do("discard")
	return mapErr(err)
}

// Commit activates the candidate configuration.
func (r *RemoteDevice) Commit() error {
	_, err := r.c.Do("commit")
	return mapErr(err)
}

// CommitConfirmed activates the candidate with an automatic rollback
// deadline.
func (r *RemoteDevice) CommitConfirmed(grace time.Duration) error {
	ms := grace.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	_, err := r.c.Do(fmt.Sprintf("commit-confirmed-ms %d", ms))
	return mapErr(err)
}

// Confirm makes a pending commit-confirmed permanent.
func (r *RemoteDevice) Confirm() error {
	_, err := r.c.Do("confirm")
	return mapErr(err)
}

// Rollback restores the previous configuration.
func (r *RemoteDevice) Rollback() error {
	_, err := r.c.Do("rollback")
	return mapErr(err)
}

// EraseConfig wipes the running configuration.
func (r *RemoteDevice) EraseConfig() error {
	_, err := r.c.Do("erase")
	return mapErr(err)
}

// ShowInterfaces fetches interface status.
func (r *RemoteDevice) ShowInterfaces() ([]IfaceStatus, error) {
	out, err := r.c.ShowInterfaces()
	return out, mapErr(err)
}

// ShowLLDPNeighbors fetches the LLDP adjacency table.
func (r *RemoteDevice) ShowLLDPNeighbors() ([]LLDPNeighbor, error) {
	body, err := r.c.Do("show lldp neighbors")
	if err != nil {
		return nil, mapErr(err)
	}
	var out []LLDPNeighbor
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ShowBGPSummary fetches BGP peer state.
func (r *RemoteDevice) ShowBGPSummary() ([]BGPPeerStatus, error) {
	body, err := r.c.Do("show bgp summary")
	if err != nil {
		return nil, mapErr(err)
	}
	var out []BGPPeerStatus
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ShowVersion fetches device identity.
func (r *RemoteDevice) ShowVersion() (VersionInfo, error) {
	body, err := r.c.Do("show version")
	if err != nil {
		return VersionInfo{}, mapErr(err)
	}
	var out VersionInfo
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return VersionInfo{}, err
	}
	return out, nil
}

// Counters fetches SNMP-style gauges.
func (r *RemoteDevice) Counters() (map[string]float64, error) {
	body, err := r.c.Do("show counters")
	if err != nil {
		return nil, mapErr(err)
	}
	var out map[string]float64
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ConfirmPending is unavailable over the CLI; it always returns false.
func (r *RemoteDevice) ConfirmPending() bool { return false }

// Close ends the session.
func (r *RemoteDevice) Close() error { return r.c.Close() }
