package netsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// Fault injection: the management plane misbehaving on purpose.
//
// Robotron's deployment safety mechanisms (§5.3.2 — dryrun, atomic
// sessions, commit-confirm, phased pushes) exist because real devices
// time out, drop sessions mid-commit, and reboot under the operator's
// feet. A FaultPolicy makes netsim produce those failures
// deterministically: every injection decision is derived from
// hash(seed, device, verb, n) where n is a per-device-per-verb call
// counter, so a chaos run is reproducible from its printed seed
// regardless of goroutine interleaving, and the same policy drives both
// the in-process Device API and the TCP CLI in mgmt.go through one
// shared hook.

// FaultKind names one class of injected failure.
type FaultKind string

const (
	// FaultTransient fails the operation before it applies with a
	// retryable error (the mgmt session hiccuped; nothing changed).
	FaultTransient FaultKind = "transient"
	// FaultLatency delays the operation's reply (a slow control plane).
	// Combined with client deadlines it manufactures timeouts.
	FaultLatency FaultKind = "latency"
	// FaultGarbled corrupts the reply body: the operation ran, but the
	// client cannot trust what it read back.
	FaultGarbled FaultKind = "garbled"
	// FaultDropBefore drops the management connection before the
	// operation applies. The client sees a dead session; the device
	// config is untouched.
	FaultDropBefore FaultKind = "drop-before"
	// FaultDropAfter drops the management connection after the operation
	// applied but before the OK reply — the ambiguous-commit case: the
	// client cannot distinguish this from FaultDropBefore without
	// reading state back.
	FaultDropAfter FaultKind = "drop-after"
	// FaultReboot reboots the device immediately after the operation
	// applies (mid-deploy power event): uptime resets and links flap.
	FaultReboot FaultKind = "reboot"
)

// ErrInjectedTransient marks a retry-safe injected failure; the
// operation did not apply.
var ErrInjectedTransient = fmt.Errorf("netsim: injected transient fault")

// ErrConnDropped marks a management-session drop. Whether the
// in-flight operation applied is deliberately unknowable from the error
// alone — callers must resolve the ambiguity by reading state back.
var ErrConnDropped = fmt.Errorf("netsim: management connection dropped")

// ErrGarbledReply marks a reply that arrived corrupted; the operation
// itself may well have applied.
var ErrGarbledReply = fmt.Errorf("netsim: garbled management reply")

// FaultRule matches a subset of (device, verb) calls and injects one
// fault kind with the given probability.
type FaultRule struct {
	Kind        FaultKind
	Probability float64       // 0..1 chance per matching call
	Verbs       []string      // mgmt verbs ("commit", "load-config"...); empty = every faultable verb
	Devices     []string      // exact device names; empty = every device
	Latency     time.Duration // FaultLatency: how long to stall
	MaxCount    int64         // stop firing after this many injections; 0 = unlimited

	// fired is allocated by Add, so FaultRule literals stay plain
	// copyable values.
	fired *atomic.Int64
}

func (r *FaultRule) matches(device, verb string) bool {
	if len(r.Verbs) > 0 {
		ok := false
		for _, v := range r.Verbs {
			if v == verb {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(r.Devices) > 0 {
		ok := false
		for _, d := range r.Devices {
			if d == device {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// FaultPolicy is a seeded, deterministic fault schedule over management
// operations. Safe for concurrent use; one policy is shared by a whole
// fleet.
type FaultPolicy struct {
	seed int64

	mu       sync.Mutex
	rules    []*FaultRule
	counters map[string]*atomic.Int64 // per device|verb decision index
	counts   map[FaultKind]*atomic.Int64

	disabled atomic.Bool

	metricsMu sync.Mutex
	metrics   map[FaultKind]*telemetry.Counter
}

// NewFaultPolicy creates an empty policy. The seed fully determines the
// schedule: print it on failure and replay the run with the same seed.
func NewFaultPolicy(seed int64) *FaultPolicy {
	return &FaultPolicy{
		seed:     seed,
		counters: make(map[string]*atomic.Int64),
		counts:   make(map[FaultKind]*atomic.Int64),
	}
}

// Seed returns the policy's seed.
func (p *FaultPolicy) Seed() int64 { return p.seed }

// Add appends a rule; rules are evaluated in insertion order and the
// first non-latency rule to fire wins (latency composes with a
// subsequent error fault, like a slow session that then drops).
func (p *FaultPolicy) Add(r FaultRule) *FaultPolicy {
	p.mu.Lock()
	defer p.mu.Unlock()
	rule := r
	rule.fired = new(atomic.Int64)
	p.rules = append(p.rules, &rule)
	return p
}

// SetDisabled pauses (true) or resumes (false) injection. Disabled
// decisions do not advance the schedule.
func (p *FaultPolicy) SetDisabled(v bool) { p.disabled.Store(v) }

// Counts returns how many faults fired, by kind.
func (p *FaultPolicy) Counts() map[FaultKind]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[FaultKind]int64, len(p.counts))
	for k, c := range p.counts {
		out[k] = c.Load()
	}
	return out
}

// Total returns how many faults fired across all kinds.
func (p *FaultPolicy) Total() int64 {
	var t int64
	for _, n := range p.Counts() {
		t += n
	}
	return t
}

// String renders the fired-fault summary with the seed, the line a
// failing chaos run prints for reproduction.
func (p *FaultPolicy) String() string {
	counts := p.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "fault policy seed=%d injected={", p.seed)
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%d", k, counts[FaultKind(k)])
	}
	b.WriteString("}")
	return b.String()
}

// Instrument registers per-kind injected-fault counters on reg.
func (p *FaultPolicy) Instrument(reg *telemetry.Registry) {
	reg.Help("robotron_netsim_injected_faults_total",
		"Management-plane faults injected by the netsim chaos policy, by kind.")
	p.metricsMu.Lock()
	defer p.metricsMu.Unlock()
	p.metrics = make(map[FaultKind]*telemetry.Counter)
	for _, k := range []FaultKind{FaultTransient, FaultLatency, FaultGarbled,
		FaultDropBefore, FaultDropAfter, FaultReboot} {
		p.metrics[k] = reg.Counter("robotron_netsim_injected_faults_total",
			telemetry.L("kind", string(k))...)
	}
}

// faultPlan is the resolved outcome of one injection decision.
type faultPlan struct {
	latency time.Duration
	preErr  error // returned before the operation runs: nothing applied
	postErr error // returned after the operation ran: it DID apply
	garble  bool  // corrupt a string reply (operation applied)
	reboot  bool  // reboot the device after the operation applies
}

// decide draws the fault plan for call n of (device, verb). The PRNG is
// re-derived per decision from (seed, device, verb, n), so the schedule
// is a pure function of the call sequence per device+verb — concurrent
// deployment goroutines cannot perturb it.
func (p *FaultPolicy) decide(device, verb string) faultPlan {
	if p == nil || p.disabled.Load() {
		return faultPlan{}
	}
	p.mu.Lock()
	key := device + "|" + verb
	ctr, ok := p.counters[key]
	if !ok {
		ctr = new(atomic.Int64)
		p.counters[key] = ctr
	}
	rules := p.rules
	p.mu.Unlock()

	n := ctr.Add(1) - 1
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", p.seed, device, verb, n)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	var plan faultPlan
	for _, r := range rules {
		if !r.matches(device, verb) {
			continue
		}
		// Draw for every matching rule so the schedule of later rules
		// does not shift when an earlier rule fires.
		draw := rng.Float64()
		if draw >= r.Probability {
			continue
		}
		if r.MaxCount > 0 && r.fired.Load() >= r.MaxCount {
			continue
		}
		r.fired.Add(1)
		p.record(r.Kind)
		switch r.Kind {
		case FaultLatency:
			plan.latency += r.Latency
			continue // latency composes with a later error fault
		case FaultTransient:
			plan.preErr = fmt.Errorf("%w: %s %s", ErrInjectedTransient, device, verb)
		case FaultDropBefore:
			plan.preErr = fmt.Errorf("%w: %s %s (before apply)", ErrConnDropped, device, verb)
		case FaultDropAfter:
			plan.postErr = fmt.Errorf("%w: %s %s (after apply)", ErrConnDropped, device, verb)
		case FaultGarbled:
			plan.garble = true
			plan.postErr = fmt.Errorf("%w: %s %s", ErrGarbledReply, device, verb)
		case FaultReboot:
			plan.reboot = true
			continue // the operation still applies; reboot follows it
		}
		return plan
	}
	return plan
}

func (p *FaultPolicy) record(k FaultKind) {
	p.mu.Lock()
	c, ok := p.counts[k]
	if !ok {
		c = new(atomic.Int64)
		p.counts[k] = c
	}
	p.mu.Unlock()
	c.Add(1)
	p.metricsMu.Lock()
	m := p.metrics[k]
	p.metricsMu.Unlock()
	m.Inc() // telemetry counters are nil-safe
}

// --- device-side hook ---

// SetFaultPolicy attaches (or, with nil, detaches) a fault policy to
// this device's management verbs.
func (d *Device) SetFaultPolicy(p *FaultPolicy) {
	d.mu.Lock()
	d.faults = p
	d.mu.Unlock()
}

func (d *Device) faultPolicy() *FaultPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// runFault wraps an error-returning management verb with the device's
// fault policy. The pre/post distinction is what makes drops ambiguous:
// preErr means op never ran, postErr means it ran to completion and
// only the reply was lost.
func (d *Device) runFault(verb string, op func() error) error {
	d.mgmtOps.Add(1)
	plan := d.faultPolicy().decide(d.name, verb)
	if plan.latency > 0 {
		time.Sleep(plan.latency)
	}
	if plan.preErr != nil {
		return plan.preErr
	}
	err := op()
	if plan.reboot && err == nil {
		d.Reboot()
	}
	if err != nil {
		return err
	}
	return plan.postErr
}

// runFaultStr is runFault for verbs returning a body; FaultGarbled
// corrupts the body and surfaces ErrGarbledReply alongside it.
func (d *Device) runFaultStr(verb string, op func() (string, error)) (string, error) {
	d.mgmtOps.Add(1)
	plan := d.faultPolicy().decide(d.name, verb)
	if plan.latency > 0 {
		time.Sleep(plan.latency)
	}
	if plan.preErr != nil {
		return "", plan.preErr
	}
	out, err := op()
	if plan.reboot && err == nil {
		d.Reboot()
	}
	if err != nil {
		return "", err
	}
	if plan.garble {
		return garbleString(out), plan.postErr
	}
	if plan.postErr != nil {
		return "", plan.postErr
	}
	return out, nil
}

// garbleString deterministically corrupts a reply body: truncated
// mid-stream with binary junk appended, the way a torn TCP read looks.
func garbleString(s string) string {
	return s[:len(s)/2] + "\x00\x15<GARBLED>"
}

// SetFaultPolicy attaches one policy to every device in the fleet,
// including devices added later.
func (f *Fleet) SetFaultPolicy(p *FaultPolicy) {
	f.mu.Lock()
	f.faults = p
	devices := make([]*Device, 0, len(f.devices))
	for _, d := range f.devices {
		devices = append(devices, d)
	}
	f.mu.Unlock()
	for _, d := range devices {
		d.SetFaultPolicy(p)
	}
}

// FaultPolicy returns the fleet's attached policy (nil when chaos is off).
func (f *Fleet) FaultPolicy() *FaultPolicy {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}
