package netsim

import (
	"fmt"
	"sort"
	"sync"
)

// Fleet owns a set of devices and the cabling between them. It derives
// link-level operational state: an interface is up when it is configured
// on both ends of a cable and neither device is down, and LLDP adjacency
// tables reflect the same cabling — the raw data from which FBNet Derived
// circuits are built (§4.1.2).
//
// Derivation is incremental: config commits, wiring changes, and health
// events enqueue only the affected devices into a dirty set, and
// flushDirty re-derives per-device state from three indexes maintained on
// every commit — cablesByDev (incident cables), addrOwners (address token
// -> owning devices), and sessionsByAddr (peer address -> devices with a
// session to it). A single-device commit therefore costs O(degree +
// sessions) instead of a full-fleet pass. RecomputeFull retains the
// original whole-fleet derivation as the reference implementation; the
// incremental engine's results are property-tested to be a fixed point of
// it.
type Fleet struct {
	mu      sync.Mutex
	devices map[string]*Device
	cables  []cable
	faults  *FaultPolicy // attached to every device, present and future

	// cablesByDev indexes f.cables by endpoint device name so wiring
	// checks and per-device recompute are O(degree), not O(cables).
	cablesByDev map[string][]cable
	// devTokens holds the address-like tokens of each device's committed
	// running config; addrOwners is its inverse (token -> owner names).
	devTokens  map[string][]string
	addrOwners map[string]map[string]struct{}
	// devSessions holds each device's configured BGP peer addresses;
	// sessionsByAddr is its inverse (peer addr -> session holder names).
	devSessions    map[string][]string
	sessionsByAddr map[string]map[string]struct{}
	// dirty is the set of devices whose derived state must be re-derived
	// on the next flush.
	dirty map[string]struct{}

	// recomputeMu serializes whole recompute flushes. Commits from a
	// parallel deployment trigger concurrent recomputes; without this, a
	// pass computed from a stale snapshot (a peer's config not yet
	// committed) can write its LLDP/link tables after a newer pass and
	// leave a one-sided adjacency. Serialized, the last pass to run reads
	// post-commit state and settles every table consistently.
	recomputeMu sync.Mutex
}

type cable struct {
	aDev, aIf, zDev, zIf string
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{
		devices:        make(map[string]*Device),
		cablesByDev:    make(map[string][]cable),
		devTokens:      make(map[string][]string),
		addrOwners:     make(map[string]map[string]struct{}),
		devSessions:    make(map[string][]string),
		sessionsByAddr: make(map[string]map[string]struct{}),
		dirty:          make(map[string]struct{}),
	}
}

// AddDevice creates a device in the fleet and returns it.
func (f *Fleet) AddDevice(name string, vendor Vendor, role, site string) (*Device, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.devices[name]; dup {
		return nil, fmt.Errorf("netsim: device %q already exists", name)
	}
	d := NewDevice(name, vendor, role, site)
	d.onCommit = func(dd *Device) { f.deviceChanged(dd, true) }
	d.onManual = func(dd *Device) { f.deviceChanged(dd, false) }
	d.onHealth = func(dd *Device) { f.healthChanged(dd) }
	d.faults = f.faults
	f.devices[name] = d
	return d, nil
}

// Device returns a device by name.
func (f *Fleet) Device(name string) (*Device, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[name]
	return d, ok
}

// Devices returns all devices sorted by name.
func (f *Fleet) Devices() []*Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.devices))
	for n := range f.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Device, len(names))
	for i, n := range names {
		out[i] = f.devices[n]
	}
	return out
}

// Wire cables aDev:aIf to zDev:zIf. Link state is recomputed immediately.
func (f *Fleet) Wire(aDev, aIf, zDev, zIf string) error {
	f.mu.Lock()
	if _, ok := f.devices[aDev]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("netsim: unknown device %q", aDev)
	}
	if _, ok := f.devices[zDev]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("netsim: unknown device %q", zDev)
	}
	for _, end := range [2][2]string{{aDev, aIf}, {zDev, zIf}} {
		for _, c := range f.cablesByDev[end[0]] {
			if (c.aDev == end[0] && c.aIf == end[1]) || (c.zDev == end[0] && c.zIf == end[1]) {
				f.mu.Unlock()
				return fmt.Errorf("netsim: %s:%s is already cabled", end[0], end[1])
			}
		}
	}
	nc := cable{aDev: aDev, aIf: aIf, zDev: zDev, zIf: zIf}
	f.cables = append(f.cables, nc)
	f.cablesByDev[aDev] = append(f.cablesByDev[aDev], nc)
	if zDev != aDev {
		f.cablesByDev[zDev] = append(f.cablesByDev[zDev], nc)
	}
	f.dirty[aDev] = struct{}{}
	f.dirty[zDev] = struct{}{}
	f.mu.Unlock()
	f.flushDirty()
	return nil
}

// CableOf returns the far end of the cable attached to dev:iface.
func (f *Fleet) CableOf(dev, iface string) (farDev, farIface string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.cablesByDev[dev] {
		if c.aDev == dev && c.aIf == iface {
			return c.zDev, c.zIf, true
		}
		if c.zDev == dev && c.zIf == iface {
			return c.aDev, c.aIf, true
		}
	}
	return "", "", false
}

// Uncable removes the cable attached to dev:iface (a fiber cut or
// recabling event).
func (f *Fleet) Uncable(dev, iface string) bool {
	f.mu.Lock()
	var removed cable
	found := false
	for _, c := range f.cablesByDev[dev] {
		if (c.aDev == dev && c.aIf == iface) || (c.zDev == dev && c.zIf == iface) {
			removed, found = c, true
			break
		}
	}
	if !found {
		f.mu.Unlock()
		return false
	}
	for i, c := range f.cables {
		if c == removed {
			f.cables = append(f.cables[:i], f.cables[i+1:]...)
			break
		}
	}
	f.removeCableFromDevLocked(removed.aDev, removed)
	if removed.zDev != removed.aDev {
		f.removeCableFromDevLocked(removed.zDev, removed)
	}
	f.dirty[removed.aDev] = struct{}{}
	f.dirty[removed.zDev] = struct{}{}
	f.mu.Unlock()
	f.flushDirty()
	return true
}

func (f *Fleet) removeCableFromDevLocked(dev string, c cable) {
	list := f.cablesByDev[dev]
	for i := range list {
		if list[i] == c {
			f.cablesByDev[dev] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// --- incremental derivation engine ---

// deviceChanged is the onCommit/onManual hook: refresh the device's
// ownership and session indexes from its committed running config, mark
// the device — and every holder of a session to a token that appeared or
// disappeared — dirty, and (for commits) flush immediately. Manual
// out-of-band edits only update the indexes and the dirty set; their
// derived state stays stale until the next flush, matching the
// full-recompute era where drift was only picked up by the next pass.
func (f *Fleet) deviceChanged(d *Device, flush bool) {
	cfg, peers := d.indexSnapshot()
	tokens := addrTokens(cfg)
	name := d.Name()
	f.mu.Lock()
	changed := f.updateIndexesLocked(name, tokens, peers)
	f.dirty[name] = struct{}{}
	for _, t := range changed {
		for holder := range f.sessionsByAddr[t] {
			f.dirty[holder] = struct{}{}
		}
	}
	f.mu.Unlock()
	if flush {
		f.flushDirty()
	}
}

// healthChanged is the onHealth hook: reachability and hardware events
// mark the device dirty but do not flush — exactly the pre-incremental
// behavior, where SetDown/Reboot/RemoveLinecard never triggered a
// recompute and derived state stayed stale until the next pass. The
// flush-time closure pulls in the session holders affected by the
// device's reachability.
func (f *Fleet) healthChanged(d *Device) {
	f.mu.Lock()
	f.dirty[d.Name()] = struct{}{}
	f.mu.Unlock()
}

// updateIndexesLocked replaces name's token and session index entries and
// returns the tokens that appeared or disappeared.
func (f *Fleet) updateIndexesLocked(name string, tokens, peers []string) (changed []string) {
	oldTokens := f.devTokens[name]
	oldSet := make(map[string]struct{}, len(oldTokens))
	for _, t := range oldTokens {
		oldSet[t] = struct{}{}
	}
	newTokens := make([]string, 0, len(tokens))
	newSet := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, dup := newSet[t]; dup {
			continue
		}
		newSet[t] = struct{}{}
		newTokens = append(newTokens, t)
		if _, had := oldSet[t]; !had {
			owners := f.addrOwners[t]
			if owners == nil {
				owners = make(map[string]struct{}, 1)
				f.addrOwners[t] = owners
			}
			owners[name] = struct{}{}
			changed = append(changed, t)
		}
	}
	for _, t := range oldTokens {
		if _, still := newSet[t]; !still {
			if owners := f.addrOwners[t]; owners != nil {
				delete(owners, name)
				if len(owners) == 0 {
					delete(f.addrOwners, t)
				}
			}
			changed = append(changed, t)
		}
	}
	f.devTokens[name] = newTokens

	oldPeers := f.devSessions[name]
	peerSet := make(map[string]struct{}, len(peers))
	newPeers := make([]string, 0, len(peers))
	for _, a := range peers {
		if _, dup := peerSet[a]; dup {
			continue
		}
		peerSet[a] = struct{}{}
		newPeers = append(newPeers, a)
		holders := f.sessionsByAddr[a]
		if holders == nil {
			holders = make(map[string]struct{}, 1)
			f.sessionsByAddr[a] = holders
		}
		holders[name] = struct{}{}
	}
	for _, a := range oldPeers {
		if _, still := peerSet[a]; !still {
			if holders := f.sessionsByAddr[a]; holders != nil {
				delete(holders, name)
				if len(holders) == 0 {
					delete(f.sessionsByAddr, a)
				}
			}
		}
	}
	f.devSessions[name] = newPeers
	return changed
}

// cableEval is one cable with both endpoints resolved.
type cableEval struct {
	c    cable
	a, z *Device
}

// sessionEval is one BGP session with the other owners of its peer
// address resolved.
type sessionEval struct {
	addr   string
	owners []*Device
}

// recomputeUnit is the per-device work of one flush: the incident cables
// to re-derive (deduplicated across units), the cabled interface set, and
// the sessions to re-evaluate.
type recomputeUnit struct {
	d        *Device
	cables   []cableEval
	cabled   map[string]bool
	sessions []sessionEval
}

// flushDirty drains the dirty set: it expands the set with every holder
// of a session to a token owned by a dirty device (reachability or
// ownership of those tokens may have changed), snapshots per-device work
// units from the indexes, and re-derives links, LLDP, and BGP for each
// unit. Loops until the dirty set is empty so dirt enqueued concurrently
// is settled too.
func (f *Fleet) flushDirty() {
	f.recomputeMu.Lock()
	defer f.recomputeMu.Unlock()
	for {
		f.mu.Lock()
		if len(f.dirty) == 0 {
			f.mu.Unlock()
			return
		}
		names := make([]string, 0, len(f.dirty))
		for n := range f.dirty {
			names = append(names, n)
		}
		seen := make(map[string]struct{}, len(names))
		for _, n := range names {
			seen[n] = struct{}{}
		}
		// One level of expansion: holders re-derive their own sessions
		// only, which cannot dirty anything further.
		initial := len(names)
		for i := 0; i < initial; i++ {
			for _, t := range f.devTokens[names[i]] {
				for holder := range f.sessionsByAddr[t] {
					if _, ok := seen[holder]; !ok {
						seen[holder] = struct{}{}
						names = append(names, holder)
					}
				}
			}
		}
		f.dirty = make(map[string]struct{})

		units := make([]recomputeUnit, 0, len(names))
		doneCables := make(map[cable]bool)
		for _, n := range names {
			d := f.devices[n]
			if d == nil {
				continue
			}
			u := recomputeUnit{d: d, cabled: make(map[string]bool, len(f.cablesByDev[n]))}
			for _, c := range f.cablesByDev[n] {
				if c.aDev == n {
					u.cabled[c.aIf] = true
				}
				if c.zDev == n {
					u.cabled[c.zIf] = true
				}
				if !doneCables[c] {
					doneCables[c] = true
					u.cables = append(u.cables, cableEval{c: c, a: f.devices[c.aDev], z: f.devices[c.zDev]})
				}
			}
			for _, addr := range f.devSessions[n] {
				se := sessionEval{addr: addr}
				for o := range f.addrOwners[addr] {
					if o != n {
						se.owners = append(se.owners, f.devices[o])
					}
				}
				u.sessions = append(u.sessions, se)
			}
			units = append(units, u)
		}
		f.mu.Unlock()

		for _, u := range units {
			recomputeDevice(u)
		}
	}
}

// recomputeDevice re-derives one device's slice of the fleet state: link
// and LLDP entries of its incident cables (both ends), the
// uncabled-configured-interfaces-down rule, and its BGP session states.
func recomputeDevice(u recomputeUnit) {
	for _, ce := range u.cables {
		if ce.a == nil || ce.z == nil {
			continue
		}
		up := ce.a.Reachable() && ce.z.Reachable() && ce.a.HasInterface(ce.c.aIf) && ce.z.HasInterface(ce.c.zIf)
		ce.a.setLink(ce.c.aIf, up)
		ce.z.setLink(ce.c.zIf, up)
		if up {
			ce.a.setLLDPEntry(LLDPNeighbor{LocalInterface: ce.c.aIf, NeighborDevice: ce.c.zDev, NeighborInterface: ce.c.zIf})
			ce.z.setLLDPEntry(LLDPNeighbor{LocalInterface: ce.c.zIf, NeighborDevice: ce.c.aDev, NeighborInterface: ce.c.aIf})
		} else {
			ce.a.clearLLDPEntry(ce.c.aIf)
			ce.z.clearLLDPEntry(ce.c.zIf)
		}
	}
	u.d.pruneLLDP(u.cabled)
	if !u.d.Reachable() {
		return
	}
	// Uncabled configured interfaces stay down.
	for _, name := range u.d.ifaceNames() {
		if !u.cabled[name] {
			u.d.setLink(name, false)
		}
	}
	for _, s := range u.sessions {
		state := "Active"
		if s.addr != "" {
			for _, o := range s.owners {
				if o != nil && o.Reachable() {
					state = "Established"
					break
				}
			}
		}
		u.d.setBGP(s.addr, state)
	}
}

// Recompute re-derives every link's operational state, LLDP table, and
// BGP session state. Wiring changes and config commits now settle
// incrementally on their own; Recompute remains the full-fleet safety
// valve (tests and health-event settlement use it) and is implemented by
// refreshing every device's indexes, marking everything dirty, and
// flushing.
func (f *Fleet) Recompute() {
	f.mu.Lock()
	devs := make([]*Device, 0, len(f.devices))
	for n, d := range f.devices {
		devs = append(devs, d)
		f.dirty[n] = struct{}{}
	}
	f.mu.Unlock()
	for _, d := range devs {
		f.deviceChanged(d, false)
	}
	f.flushDirty()
}

// RecomputeFull is the retained reference implementation: a full-fleet
// derivation pass that rebuilds every link, LLDP table, and BGP session
// from scratch without consulting the incremental indexes. The
// incremental engine is property-tested against it (any state the
// incremental path settles must be a fixed point of RecomputeFull).
func (f *Fleet) RecomputeFull() {
	f.recomputeMu.Lock()
	defer f.recomputeMu.Unlock()
	f.mu.Lock()
	cables := append([]cable(nil), f.cables...)
	devs := make(map[string]*Device, len(f.devices))
	for n, d := range f.devices {
		devs[n] = d
	}
	f.mu.Unlock()

	lldp := make(map[string][]LLDPNeighbor)
	cabled := make(map[string]map[string]bool) // device -> iface -> cabled
	for _, c := range cables {
		a, z := devs[c.aDev], devs[c.zDev]
		if a == nil || z == nil {
			continue
		}
		up := a.Reachable() && z.Reachable() && a.HasInterface(c.aIf) && z.HasInterface(c.zIf)
		a.setLink(c.aIf, up)
		z.setLink(c.zIf, up)
		if cabled[c.aDev] == nil {
			cabled[c.aDev] = map[string]bool{}
		}
		if cabled[c.zDev] == nil {
			cabled[c.zDev] = map[string]bool{}
		}
		cabled[c.aDev][c.aIf] = true
		cabled[c.zDev][c.zIf] = true
		if up {
			lldp[c.aDev] = append(lldp[c.aDev], LLDPNeighbor{
				LocalInterface: c.aIf, NeighborDevice: c.zDev, NeighborInterface: c.zIf,
			})
			lldp[c.zDev] = append(lldp[c.zDev], LLDPNeighbor{
				LocalInterface: c.zIf, NeighborDevice: c.aDev, NeighborInterface: c.aIf,
			})
		}
	}
	for name, d := range devs {
		d.setLLDP(lldp[name])
		// Uncabled configured interfaces stay down.
		if d.Reachable() {
			ifaces, err := d.ShowInterfaces()
			if err == nil {
				for _, st := range ifaces {
					if !cabled[name][st.Name] {
						d.setLink(st.Name, false)
					}
				}
			}
		}
	}
	recomputeBGPFull(devs)
}

// recomputeBGPFull moves each configured session to Established when the
// peer address is an address token of another reachable device's running
// config (e.g. one of its interface addresses), and to Active otherwise.
// Matching is by exact token, not substring: a session to 10.0.0.1 is not
// established by a device that only owns 10.0.0.12.
func recomputeBGPFull(devs map[string]*Device) {
	owned := make(map[*Device]map[string]struct{}, len(devs))
	for _, d := range devs {
		// Internal simulation bookkeeping, not a management operation:
		// bypass the fault hook so chaos policies neither fail the
		// recompute nor have their schedules perturbed by it.
		if cfg, err := d.runningConfigOp(); err == nil {
			set := make(map[string]struct{})
			for _, t := range addrTokens(cfg) {
				set[t] = struct{}{}
			}
			owned[d] = set
		}
	}
	for _, d := range devs {
		if !d.Reachable() {
			continue
		}
		peers, err := d.ShowBGPSummary()
		if err != nil {
			continue
		}
		for _, p := range peers {
			state := "Active"
			if p.PeerAddr != "" {
				for other, toks := range owned {
					if other == d {
						continue
					}
					if _, ok := toks[p.PeerAddr]; ok {
						state = "Established"
						break
					}
				}
			}
			d.setBGP(p.PeerAddr, state)
		}
	}
}

// addrTokens extracts the address-like tokens of a config: maximal runs
// of [0-9a-fA-F:.] that contain at least one digit and at least one '.'
// or ':'. IPv4 and IPv6 addresses qualify; interface names, AS numbers,
// and hostnames do not (prefix lengths are cut off by the '/'). Exact
// token matching is what fixes the old substring bug where a session to
// 10.0.0.1 was established by any config merely containing 10.0.0.12.
func addrTokens(cfg string) []string {
	var out []string
	for i, n := 0, len(cfg); i < n; {
		if !isAddrChar(cfg[i]) {
			i++
			continue
		}
		j := i
		hasDigit, hasSep := false, false
		for j < n && isAddrChar(cfg[j]) {
			switch c := cfg[j]; {
			case c >= '0' && c <= '9':
				hasDigit = true
			case c == '.' || c == ':':
				hasSep = true
			}
			j++
		}
		if hasDigit && hasSep {
			out = append(out, cfg[i:j])
		}
		i = j
	}
	return out
}

func isAddrChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' ||
		c >= 'A' && c <= 'F' || c == ':' || c == '.'
}
