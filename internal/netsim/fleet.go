package netsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Fleet owns a set of devices and the cabling between them. It derives
// link-level operational state: an interface is up when it is configured
// on both ends of a cable and neither device is down, and LLDP adjacency
// tables reflect the same cabling — the raw data from which FBNet Derived
// circuits are built (§4.1.2).
type Fleet struct {
	mu      sync.Mutex
	devices map[string]*Device
	cables  []cable
	faults  *FaultPolicy // attached to every device, present and future

	// recomputeMu serializes whole Recompute passes. Commits from a
	// parallel deployment trigger concurrent recomputes; without this, a
	// pass computed from a stale snapshot (a peer's config not yet
	// committed) can write its LLDP/link tables after a newer pass and
	// leave a one-sided adjacency. Serialized, the last pass to run reads
	// post-commit state and settles every table consistently.
	recomputeMu sync.Mutex
}

type cable struct {
	aDev, aIf, zDev, zIf string
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{devices: make(map[string]*Device)}
}

// AddDevice creates a device in the fleet and returns it.
func (f *Fleet) AddDevice(name string, vendor Vendor, role, site string) (*Device, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.devices[name]; dup {
		return nil, fmt.Errorf("netsim: device %q already exists", name)
	}
	d := NewDevice(name, vendor, role, site)
	d.onCommit = func(*Device) { f.Recompute() }
	d.faults = f.faults
	f.devices[name] = d
	return d, nil
}

// Device returns a device by name.
func (f *Fleet) Device(name string) (*Device, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.devices[name]
	return d, ok
}

// Devices returns all devices sorted by name.
func (f *Fleet) Devices() []*Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.devices))
	for n := range f.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Device, len(names))
	for i, n := range names {
		out[i] = f.devices[n]
	}
	return out
}

// Wire cables aDev:aIf to zDev:zIf. Link state is recomputed immediately.
func (f *Fleet) Wire(aDev, aIf, zDev, zIf string) error {
	f.mu.Lock()
	if _, ok := f.devices[aDev]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("netsim: unknown device %q", aDev)
	}
	if _, ok := f.devices[zDev]; !ok {
		f.mu.Unlock()
		return fmt.Errorf("netsim: unknown device %q", zDev)
	}
	for _, c := range f.cables {
		if (c.aDev == aDev && c.aIf == aIf) || (c.zDev == aDev && c.zIf == aIf) {
			f.mu.Unlock()
			return fmt.Errorf("netsim: %s:%s is already cabled", aDev, aIf)
		}
		if (c.aDev == zDev && c.aIf == zIf) || (c.zDev == zDev && c.zIf == zIf) {
			f.mu.Unlock()
			return fmt.Errorf("netsim: %s:%s is already cabled", zDev, zIf)
		}
	}
	f.cables = append(f.cables, cable{aDev: aDev, aIf: aIf, zDev: zDev, zIf: zIf})
	f.mu.Unlock()
	f.Recompute()
	return nil
}

// CableOf returns the far end of the cable attached to dev:iface.
func (f *Fleet) CableOf(dev, iface string) (farDev, farIface string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.cables {
		if c.aDev == dev && c.aIf == iface {
			return c.zDev, c.zIf, true
		}
		if c.zDev == dev && c.zIf == iface {
			return c.aDev, c.aIf, true
		}
	}
	return "", "", false
}

// Uncable removes the cable attached to dev:iface (a fiber cut or
// recabling event).
func (f *Fleet) Uncable(dev, iface string) bool {
	f.mu.Lock()
	idx := -1
	for i, c := range f.cables {
		if (c.aDev == dev && c.aIf == iface) || (c.zDev == dev && c.zIf == iface) {
			idx = i
			break
		}
	}
	if idx == -1 {
		f.mu.Unlock()
		return false
	}
	f.cables = append(f.cables[:idx], f.cables[idx+1:]...)
	f.mu.Unlock()
	f.Recompute()
	return true
}

// Recompute re-derives every link's operational state and LLDP tables
// from cabling + configs + device health. Called automatically on wiring
// changes and config commits.
func (f *Fleet) Recompute() {
	f.recomputeMu.Lock()
	defer f.recomputeMu.Unlock()
	f.mu.Lock()
	cables := append([]cable(nil), f.cables...)
	devs := make(map[string]*Device, len(f.devices))
	for n, d := range f.devices {
		devs[n] = d
	}
	f.mu.Unlock()

	lldp := make(map[string][]LLDPNeighbor)
	cabled := make(map[string]map[string]bool) // device -> iface -> cabled
	for _, c := range cables {
		a, z := devs[c.aDev], devs[c.zDev]
		if a == nil || z == nil {
			continue
		}
		up := a.Reachable() && z.Reachable() && a.HasInterface(c.aIf) && z.HasInterface(c.zIf)
		a.setLink(c.aIf, up)
		z.setLink(c.zIf, up)
		if cabled[c.aDev] == nil {
			cabled[c.aDev] = map[string]bool{}
		}
		if cabled[c.zDev] == nil {
			cabled[c.zDev] = map[string]bool{}
		}
		cabled[c.aDev][c.aIf] = true
		cabled[c.zDev][c.zIf] = true
		if up {
			lldp[c.aDev] = append(lldp[c.aDev], LLDPNeighbor{
				LocalInterface: c.aIf, NeighborDevice: c.zDev, NeighborInterface: c.zIf,
			})
			lldp[c.zDev] = append(lldp[c.zDev], LLDPNeighbor{
				LocalInterface: c.zIf, NeighborDevice: c.aDev, NeighborInterface: c.aIf,
			})
		}
	}
	for name, d := range devs {
		ns := lldp[name]
		sort.Slice(ns, func(i, j int) bool { return ns[i].LocalInterface < ns[j].LocalInterface })
		d.setLLDP(ns)
		// Uncabled configured interfaces stay down.
		if d.Reachable() {
			ifaces, err := d.ShowInterfaces()
			if err == nil {
				for _, st := range ifaces {
					if !cabled[name][st.Name] {
						d.setLink(st.Name, false)
					}
				}
			}
		}
	}
	f.recomputeBGP(devs)
}

// recomputeBGP moves each configured session to Established when the peer
// address is owned by another reachable device (its running config mentions
// the address, e.g. as an interface address), and to Active otherwise.
func (f *Fleet) recomputeBGP(devs map[string]*Device) {
	configs := make(map[*Device]string, len(devs))
	for _, d := range devs {
		// Internal simulation bookkeeping, not a management operation:
		// bypass the fault hook so chaos policies neither fail the
		// recompute nor have their schedules perturbed by it.
		if cfg, err := d.runningConfigOp(); err == nil {
			configs[d] = cfg
		}
	}
	for _, d := range devs {
		if !d.Reachable() {
			continue
		}
		peers, err := d.ShowBGPSummary()
		if err != nil {
			continue
		}
		for _, p := range peers {
			state := "Active"
			for other, cfg := range configs {
				if other != d && p.PeerAddr != "" && strings.Contains(cfg, p.PeerAddr) {
					state = "Established"
					break
				}
			}
			d.setBGP(p.PeerAddr, state)
		}
	}
}
