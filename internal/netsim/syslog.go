package netsim

import (
	"fmt"
	"net"
	"regexp"
	"strconv"
	"sync"
	"time"
)

// Syslog transport: devices are configured to send syslog messages to a
// collection address — in production a BGP anycast address fronting
// multiple collectors (§5.4.1); here a UDP endpoint.

// UDPSyslogSink returns a device syslog sink that forwards each message as
// one UDP datagram to addr. Send failures are dropped, matching syslog's
// fire-and-forget semantics.
func UDPSyslogSink(addr string) (func(SyslogMessage), error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: syslog sink: %w", err)
	}
	var mu sync.Mutex
	return func(m SyslogMessage) {
		mu.Lock()
		defer mu.Unlock()
		_, _ = conn.Write([]byte(m.Format()))
	}, nil
}

var syslogRe = regexp.MustCompile(`^<(\d+)>1 (\S+) (\S+) (\S+) \S+ \S+ \S+ (.*)$`)

// ParseSyslog parses the single-line RFC 5424-like format produced by
// SyslogMessage.Format.
func ParseSyslog(line string) (SyslogMessage, error) {
	m := syslogRe.FindStringSubmatch(line)
	if m == nil {
		return SyslogMessage{}, fmt.Errorf("netsim: malformed syslog line %q", line)
	}
	pri, err := strconv.Atoi(m[1])
	if err != nil {
		return SyslogMessage{}, fmt.Errorf("netsim: bad PRI in %q", line)
	}
	ts, err := time.Parse(time.RFC3339, m[2])
	if err != nil {
		return SyslogMessage{}, fmt.Errorf("netsim: bad timestamp in %q: %w", line, err)
	}
	return SyslogMessage{
		Severity: pri % 8,
		Host:     m[3],
		App:      m[4],
		Text:     m[5],
		Time:     ts,
	}, nil
}
