package netsim

import (
	"fmt"
	"os"
	"testing"
)

// The scale benchmarks measure the netsim hot path — what a single config
// commit costs as the fleet grows — at fleet sizes far beyond the 256
// devices the original benchmarks stopped at. The 16384 and 100k sizes
// are gated behind ROBOTRON_BENCH_LARGE=1 so `make bench` stays fast by
// default; `make bench-scale` sets the variable.

func benchLarge() bool { return os.Getenv("ROBOTRON_BENCH_LARGE") == "1" }

// scaleFleetSizes returns the fleet sizes to benchmark.
func scaleFleetSizes() []int {
	sizes := []int{256, 4096}
	if benchLarge() {
		sizes = append(sizes, 16384)
	}
	return sizes
}

// ringAddrs returns the two /31 endpoint addresses of ring link l.
func ringAddrs(l int) (a, z string) {
	base := l * 2
	return fmt.Sprintf("10.%d.%d.%d", (base>>16)&255, (base>>8)&255, base&255),
		fmt.Sprintf("10.%d.%d.%d", (base>>16)&255, (base>>8)&255, (base&255)+1)
}

// ringConfig builds the vendor1 config of device i in an n-device ring:
// two point-to-point interfaces and an eBGP session to each ring
// neighbor's far-end address.
func ringConfig(i, n int) string {
	left := (i - 1 + n) % n
	leftPeer, leftNear := ringAddrs(left) // link left: (left dev side, our side)
	rightNear, rightPeer := ringAddrs(i)  // link i: (our side, right dev side)
	return fmt.Sprintf(`hostname dev%06d
interface et1/1
 ip addr %s/31
interface et1/2
 ip addr %s/31
neighbor %s remote-as 65000
neighbor %s remote-as 65000
`, i, leftNear, rightNear, leftPeer, rightPeer)
}

// buildRingFleet wires n devices in a ring and commits every config.
func buildRingFleet(tb testing.TB, n int) *Fleet {
	tb.Helper()
	f := NewFleet()
	for i := 0; i < n; i++ {
		if _, err := f.AddDevice(fmt.Sprintf("dev%06d", i), Vendor1, "bb", "bench"); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d, _ := f.Device(fmt.Sprintf("dev%06d", i))
		if err := d.LoadConfig(ringConfig(i, n)); err != nil {
			tb.Fatal(err)
		}
		if err := d.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := f.Wire(fmt.Sprintf("dev%06d", i), "et1/2", fmt.Sprintf("dev%06d", (i+1)%n), "et1/1"); err != nil {
			tb.Fatal(err)
		}
	}
	return f
}

// BenchmarkScaleRecomputeCommit is the hot path of the management plane:
// one device commits a config change and the fleet's derived state
// (links, LLDP, BGP) settles. Before the incremental engine this cost a
// full-fleet rederivation per commit.
func BenchmarkScaleRecomputeCommit(b *testing.B) {
	for _, n := range scaleFleetSizes() {
		b.Run(fmt.Sprintf("fleet=%d", n), func(b *testing.B) {
			f := buildRingFleet(b, n)
			d, _ := f.Device("dev000000")
			cfg := ringConfig(0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.LoadConfig(cfg); err != nil {
					b.Fatal(err)
				}
				if err := d.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleRecompute100k is the 100k-device microbench: single
// device commit at a fleet size matching the paper's production estate.
func BenchmarkScaleRecompute100k(b *testing.B) {
	if !benchLarge() {
		b.Skip("set ROBOTRON_BENCH_LARGE=1 to run the 100k microbench")
	}
	n := 100_000
	f := buildRingFleet(b, n)
	d, _ := f.Device("dev000000")
	cfg := ringConfig(0, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.LoadConfig(cfg); err != nil {
			b.Fatal(err)
		}
		if err := d.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
