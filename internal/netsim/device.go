// Package netsim simulates a fleet of managed network devices.
//
// Robotron's deployment and monitoring stages talk to tens of thousands of
// heterogeneous routers and switches from multiple vendors (SIGCOMM '16,
// §5.3, §5.4). This package provides that management plane without
// hardware: each Device has a vendor personality (config syntax, native
// dryrun support, commit-confirmed behavior), a running/candidate config
// store, operational state (interfaces, LLDP adjacencies, BGP sessions,
// CPU/memory/traffic counters) derived from its config and the fleet's
// cabling, syslog emission on operational events, and injectable failures
// (reboot, linecard removal, manual config drift, unreachability).
//
// Devices are driven either in-process (the Device methods mirror a
// management session) or over TCP via the CLI server in mgmt.go, which is
// what cmd/netsimd exposes.
package netsim

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Vendor selects a device's configuration dialect and management quirks.
type Vendor string

const (
	// Vendor1 is IOS-like: flat "interface X" stanzas, no native dryrun
	// (diffs must be emulated by comparing before/after), no native
	// commit-confirmed.
	Vendor1 Vendor = "vendor1"
	// Vendor2 is JunOS-like: brace-structured config, native "show | compare"
	// dryrun and native commit-confirmed with automatic rollback.
	Vendor2 Vendor = "vendor2"
)

// ErrNotSupported marks operations a vendor platform cannot perform
// natively (e.g. dryrun on Vendor1), forcing callers onto fallback paths
// exactly as the paper describes (§5.3.2).
var ErrNotSupported = fmt.Errorf("netsim: not supported on this platform")

// ErrUnreachable is returned by every management operation while a device
// is down or partitioned.
var ErrUnreachable = fmt.Errorf("netsim: device unreachable")

// IfaceStatus is one row of "show interfaces".
type IfaceStatus struct {
	Name       string
	OperStatus string // "up" | "down"
	SpeedMbps  int64
	InOctets   uint64
	OutOctets  uint64
}

// LLDPNeighbor is one row of "show lldp neighbors".
type LLDPNeighbor struct {
	LocalInterface    string
	NeighborDevice    string
	NeighborInterface string
}

// BGPPeerStatus is one row of "show bgp summary".
type BGPPeerStatus struct {
	PeerAddr string
	State    string // "Established" | "Active" | "Idle"
	Family   string // "v4" | "v6"
}

// VersionInfo is the device identity reported by "show version".
type VersionInfo struct {
	Name      string
	Vendor    string
	OSVersion string
	UptimeS   int64
}

// SyslogMessage is one emitted syslog event, RFC 5424-shaped.
type SyslogMessage struct {
	Severity int // 0 (emerg) .. 7 (debug)
	Host     string
	App      string
	Text     string
	Time     time.Time
}

// Format renders the message in an RFC 5424-like single-line form.
func (m SyslogMessage) Format() string {
	pri := 23*8 + m.Severity // facility local7
	return fmt.Sprintf("<%d>1 %s %s %s - - - %s",
		pri, m.Time.UTC().Format(time.RFC3339), m.Host, m.App, m.Text)
}

// Device simulates one managed network device. All methods are safe for
// concurrent use.
type Device struct {
	name   string
	vendor Vendor
	role   string
	site   string

	mu          sync.Mutex
	down        bool
	bootTime    time.Time
	osVersion   string
	running     string
	candidate   string
	hasCand     bool
	history     []string // committed configs, oldest first
	ifaces      map[string]*ifaceState
	bgpPeers    map[string]*BGPPeerStatus
	lldp        map[string]LLDPNeighbor // keyed by local interface
	traffic     float64                 // offered load 0..1; >0 means draining required
	confirmTmr  *time.Timer
	confirmPrev string
	commitDelay time.Duration // simulated config-apply time

	syslogSink func(SyslogMessage)
	// onCommit lets the fleet recompute link state when configs change.
	onCommit func(*Device)
	// onManual notifies the fleet of an out-of-band config append
	// (ApplyManualChange) so the derived-state indexes stay current; no
	// recompute is triggered, matching the pre-incremental behavior where
	// manual drift was only picked up by the next recompute pass.
	onManual func(*Device)
	// onHealth notifies the fleet of a reachability or hardware change
	// (SetDown, Reboot, RemoveLinecard) so the device is marked dirty for
	// the next incremental recompute pass.
	onHealth func(*Device)
	now      func() time.Time
	// faults, when set, injects failures into management verbs (see
	// faults.go); both the in-process API and the TCP CLI go through it.
	faults *FaultPolicy

	// mgmtOps counts every management verb issued against the device,
	// successful or not — the observable footprint of a deployment.
	mgmtOps atomic.Int64
}

type ifaceState struct {
	operUp    bool
	speedMbps int64
	inOctets  uint64
	outOctets uint64
	rate      uint64 // octets per second when up
}

// NewDevice creates a healthy device with an empty config.
func NewDevice(name string, vendor Vendor, role, site string) *Device {
	d := &Device{
		name:      name,
		vendor:    vendor,
		role:      role,
		site:      site,
		bootTime:  time.Now(),
		osVersion: osVersionFor(vendor),
		ifaces:    make(map[string]*ifaceState),
		bgpPeers:  make(map[string]*BGPPeerStatus),
		now:       time.Now,
	}
	return d
}

func osVersionFor(v Vendor) string {
	if v == Vendor2 {
		return "17.4R2"
	}
	return "7.3.2"
}

// Name returns the device hostname.
func (d *Device) Name() string { return d.name }

// Vendor returns the device's vendor personality.
func (d *Device) Vendor() Vendor { return d.vendor }

// Role returns the device role (pr, bb, dr, psw, tor...).
func (d *Device) Role() string { return d.role }

// Site returns the device's site name.
func (d *Device) Site() string { return d.site }

// SetSyslogSink installs the receiver for this device's syslog messages
// (the fleet points every device at the monitoring anycast address).
func (d *Device) SetSyslogSink(sink func(SyslogMessage)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syslogSink = sink
}

// SetTimeFunc replaces the device's time source (syslog timestamps,
// traffic counters, uptime) and rebases the boot instant onto it, so a
// device driven by a virtual clock reports deterministic, monotonic
// operational state. Scenario runs point every device at the shared
// virtual clock.
func (d *Device) SetTimeFunc(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
	d.bootTime = now()
}

// emit sends a syslog message; callers must not hold d.mu.
func (d *Device) emit(severity int, app, format string, args ...any) {
	d.mu.Lock()
	sink := d.syslogSink
	now := d.now()
	d.mu.Unlock()
	if sink == nil {
		return
	}
	sink(SyslogMessage{
		Severity: severity,
		Host:     d.name,
		App:      app,
		Text:     fmt.Sprintf(format, args...),
		Time:     now,
	})
}

func (d *Device) checkUp() error {
	if d.down {
		return fmt.Errorf("%w: %s", ErrUnreachable, d.name)
	}
	return nil
}

// --- configuration operations ---

// RunningConfig returns the active configuration.
func (d *Device) RunningConfig() (string, error) {
	return d.runFaultStr("show running-config", d.runningConfigOp)
}

// PeekRunningConfig returns the active configuration without opening a
// management session: no verb is counted, no fault fires, and a down
// device still answers. It is the read-side counterpart of
// InjectRunningConfig — harness and test observation that must not
// perturb the system under test.
func (d *Device) PeekRunningConfig() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.running
}

func (d *Device) runningConfigOp() (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return "", err
	}
	return d.running, nil
}

// LoadConfig stages a full candidate configuration. Nothing changes until
// Commit (or CommitConfirmed).
func (d *Device) LoadConfig(cfg string) error {
	return d.runFault("load-config", func() error { return d.loadConfigOp(cfg) })
}

func (d *Device) loadConfigOp(cfg string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	if err := d.vendorValidate(cfg); err != nil {
		return err
	}
	d.candidate = cfg
	d.hasCand = true
	return nil
}

// vendorValidate performs the device's own config syntax check, the class
// of "invalid configurations and vendor bugs" dryrun catches (§5.3.2).
func (d *Device) vendorValidate(cfg string) error {
	if d.vendor == Vendor2 {
		depth := 0
		for i, line := range strings.Split(cfg, "\n") {
			depth += strings.Count(line, "{") - strings.Count(line, "}")
			if depth < 0 {
				return fmt.Errorf("netsim: %s: syntax error at line %d: unbalanced '}'", d.name, i+1)
			}
		}
		if depth != 0 {
			return fmt.Errorf("netsim: %s: syntax error: %d unclosed '{' block(s)", d.name, depth)
		}
	}
	return nil
}

// DiscardCandidate drops the staged candidate configuration without
// committing it (the "abort"/"discard" of real platforms). Discarding
// when nothing is staged is a no-op.
func (d *Device) DiscardCandidate() error {
	return d.runFault("discard", d.discardCandidateOp)
}

func (d *Device) discardCandidateOp() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	d.candidate = ""
	d.hasCand = false
	return nil
}

// DryrunDiff compares the candidate against the running config natively.
// Vendor1 platforms return ErrNotSupported; callers fall back to comparing
// configs before and after deployment (§5.3.2).
func (d *Device) DryrunDiff() (string, error) {
	return d.runFaultStr("compare", d.dryrunDiffOp)
}

func (d *Device) dryrunDiffOp() (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return "", err
	}
	if d.vendor != Vendor2 {
		return "", ErrNotSupported
	}
	if !d.hasCand {
		return "", fmt.Errorf("netsim: %s: no candidate configuration loaded", d.name)
	}
	return simpleDiff(d.running, d.candidate), nil
}

// simpleDiff is the device's own terse diff rendering (not Robotron's);
// lines only, no context.
func simpleDiff(old, new string) string {
	oldSet := map[string]int{}
	for _, l := range strings.Split(old, "\n") {
		oldSet[l]++
	}
	newSet := map[string]int{}
	for _, l := range strings.Split(new, "\n") {
		newSet[l]++
	}
	var b strings.Builder
	for _, l := range strings.Split(old, "\n") {
		if newSet[l] == 0 {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(new, "\n") {
		if oldSet[l] == 0 {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}

// SetCommitDelay makes subsequent commits take the given time to apply,
// simulating slow control planes (the failure mode atomic deployments
// guard against with their time window, §5.3.2).
func (d *Device) SetCommitDelay(delay time.Duration) {
	d.mu.Lock()
	d.commitDelay = delay
	d.mu.Unlock()
}

// applyDelay simulates the device chewing on a config load.
func (d *Device) applyDelay() {
	d.mu.Lock()
	delay := d.commitDelay
	d.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
}

// Commit activates the candidate configuration.
func (d *Device) Commit() error {
	return d.runFault("commit", d.commitOp)
}

func (d *Device) commitOp() error {
	d.applyDelay()
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	if !d.hasCand {
		d.mu.Unlock()
		return fmt.Errorf("netsim: %s: no candidate configuration loaded", d.name)
	}
	d.commitLocked(d.candidate)
	cb := d.onCommit
	d.mu.Unlock()

	d.emit(5, "config", "CONFIG_CHANGED: configuration committed by management session")
	if cb != nil {
		cb(d)
	}
	return nil
}

// commitLocked activates cfg and refreshes derived operational state.
func (d *Device) commitLocked(cfg string) {
	if d.running != "" {
		d.history = append(d.history, d.running)
	}
	d.running = cfg
	d.hasCand = false
	d.candidate = ""
	d.reparseLocked()
}

// CommitConfirmed activates the candidate but schedules an automatic
// rollback after grace unless Confirm is called (§5.3.2, Human
// Confirmation). Vendor1 emulates this in Robotron's deploy layer; the
// device-native path exists only on Vendor2.
func (d *Device) CommitConfirmed(grace time.Duration) error {
	return d.runFault("commit-confirmed", func() error { return d.commitConfirmedOp(grace) })
}

func (d *Device) commitConfirmedOp(grace time.Duration) error {
	d.applyDelay()
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	if d.vendor != Vendor2 {
		d.mu.Unlock()
		return ErrNotSupported
	}
	if !d.hasCand {
		d.mu.Unlock()
		return fmt.Errorf("netsim: %s: no candidate configuration loaded", d.name)
	}
	prev := d.running
	d.commitLocked(d.candidate)
	d.confirmPrev = prev
	if d.confirmTmr != nil {
		d.confirmTmr.Stop()
	}
	d.confirmTmr = time.AfterFunc(grace, func() { d.confirmExpired() })
	cb := d.onCommit
	d.mu.Unlock()

	d.emit(5, "config", "CONFIG_CHANGED: commit confirmed will be rolled back in %s unless confirmed", grace)
	if cb != nil {
		cb(d)
	}
	return nil
}

// Confirm makes a pending commit-confirmed permanent.
func (d *Device) Confirm() error {
	return d.runFault("confirm", d.confirmOp)
}

func (d *Device) confirmOp() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	if d.confirmTmr == nil {
		return fmt.Errorf("netsim: %s: no commit pending confirmation", d.name)
	}
	d.confirmTmr.Stop()
	d.confirmTmr = nil
	d.confirmPrev = ""
	return nil
}

func (d *Device) confirmExpired() {
	d.mu.Lock()
	if d.confirmTmr == nil {
		d.mu.Unlock()
		return
	}
	d.confirmTmr = nil
	prev := d.confirmPrev
	d.confirmPrev = ""
	d.commitLocked(prev)
	cb := d.onCommit
	d.mu.Unlock()
	d.emit(4, "config", "CONFIG_ROLLBACK: commit not confirmed within grace period, configuration rolled back")
	if cb != nil {
		cb(d)
	}
}

// HasCandidate reports whether an uncommitted candidate config is staged.
func (d *Device) HasCandidate() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hasCand
}

// MgmtOps returns how many management operations (any verb, including
// failed ones) have been issued against the device since creation.
func (d *Device) MgmtOps() int64 { return d.mgmtOps.Load() }

// ConfirmPending reports whether a commit-confirmed rollback timer is armed.
func (d *Device) ConfirmPending() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.confirmTmr != nil
}

// Rollback restores the previously committed configuration.
func (d *Device) Rollback() error {
	return d.runFault("rollback", d.rollbackOp)
}

func (d *Device) rollbackOp() error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	if len(d.history) == 0 {
		d.mu.Unlock()
		return fmt.Errorf("netsim: %s: no previous configuration to roll back to", d.name)
	}
	prev := d.history[len(d.history)-1]
	d.history = d.history[:len(d.history)-1]
	d.running = prev
	d.reparseLocked()
	cb := d.onCommit
	d.mu.Unlock()
	d.emit(5, "config", "CONFIG_CHANGED: configuration rolled back to previous version")
	if cb != nil {
		cb(d)
	}
	return nil
}

// EraseConfig wipes the running configuration (initial provisioning starts
// from a clean state, §5.3.1).
func (d *Device) EraseConfig() error {
	return d.runFault("erase", d.eraseConfigOp)
}

func (d *Device) eraseConfigOp() error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	d.running = ""
	d.history = nil
	d.hasCand = false
	d.reparseLocked()
	cb := d.onCommit
	d.mu.Unlock()
	d.emit(5, "config", "CONFIG_CHANGED: configuration erased")
	if cb != nil {
		cb(d)
	}
	return nil
}

// ApplyManualChange simulates an engineer editing the device directly
// (the "automation fallback" of §8): the line is appended to the running
// config and a config-change syslog fires, which is what config monitoring
// keys on.
func (d *Device) ApplyManualChange(line string) error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	if d.running != "" && !strings.HasSuffix(d.running, "\n") {
		d.running += "\n"
	}
	d.history = append(d.history, d.running)
	d.running += line + "\n"
	cb := d.onManual
	d.mu.Unlock()
	d.emit(5, "config", "CONFIG_CHANGED: configuration changed from console by admin")
	if cb != nil {
		cb(d)
	}
	return nil
}

// InjectRunningConfig replaces the running configuration out-of-band,
// bypassing the candidate/commit pipeline entirely — the simulation of
// drift arriving from outside Robotron's control (a rogue script, a
// vendor tool, an engineer on the console). The previous config lands in
// history, derived operational state reparses, and the CONFIG_CHANGED
// syslog fires, which is exactly what config monitoring keys on. Tests
// use this to create drift scenarios without hand-rolling mgmt-channel
// writes.
func (d *Device) InjectRunningConfig(cfg string) error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	if d.running != "" {
		d.history = append(d.history, d.running)
	}
	d.running = cfg
	d.reparseLocked()
	cb := d.onCommit
	d.mu.Unlock()
	d.emit(5, "config", "CONFIG_CHANGED: configuration changed out-of-band")
	if cb != nil {
		cb(d)
	}
	return nil
}

// --- operational state ---

var (
	// vendor1: "interface et1/1"; vendor2: "et-0/0/1 {" or "replace: ae0 {".
	// Only physical/aggregate/loopback interface names count; top-level
	// stanzas like "class-of-service {" and TE tunnels are not ports.
	ifaceV1Re = regexp.MustCompile(`(?m)^interface +(\S+)`)
	ifaceV2Re = regexp.MustCompile(`(?m)^(?:replace: +)?((?:et|xe|ge|ae|lo)[-0-9/.]*\d\S*) +\{`)
	// vendor1: "neighbor 2401:db00::1 remote-as 65000"
	// vendor2: "neighbor 2401:db00::1 {"
	neighborRe = regexp.MustCompile(`(?m)^\s*neighbor +(\S+?)(?: +remote-as +(\d+))?(?: *\{)?\s*$`)
	speedRe    = regexp.MustCompile(`(?m)^\s*speed +(\d+)`)
)

// reparseLocked rebuilds interface and BGP peer state from the running
// config; existing counters carry over for surviving interfaces.
func (d *Device) reparseLocked() {
	re := ifaceV1Re
	if d.vendor == Vendor2 {
		re = ifaceV2Re
	}
	names := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(d.running, -1) {
		if strings.HasPrefix(m[1], "tunnel") {
			continue // TE tunnels are not physical ports
		}
		names[m[1]] = true
	}
	speed := int64(10000)
	if m := speedRe.FindStringSubmatch(d.running); m != nil {
		fmt.Sscanf(m[1], "%d", &speed)
	}
	for name := range names {
		if _, ok := d.ifaces[name]; !ok {
			d.ifaces[name] = &ifaceState{speedMbps: speed, rate: 1 << 20}
		}
	}
	for name := range d.ifaces {
		if !names[name] {
			delete(d.ifaces, name)
		}
	}
	peers := map[string]*BGPPeerStatus{}
	for _, m := range neighborRe.FindAllStringSubmatch(d.running, -1) {
		addr := m[1]
		family := "v4"
		if strings.Contains(addr, ":") {
			family = "v6"
		}
		st := "Active"
		if old, ok := d.bgpPeers[addr]; ok {
			st = old.State
		}
		peers[addr] = &BGPPeerStatus{PeerAddr: addr, State: st, Family: family}
	}
	d.bgpPeers = peers
}

// HasInterface reports whether the running config defines the interface.
func (d *Device) HasInterface(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.ifaces[name]
	return ok
}

// setLink is called by the fleet to bring an interface up or down.
func (d *Device) setLink(iface string, up bool) bool {
	d.mu.Lock()
	st, ok := d.ifaces[iface]
	changed := ok && st.operUp != up
	if ok {
		st.operUp = up
	}
	d.mu.Unlock()
	if changed {
		state := "down"
		if up {
			state = "up"
		}
		d.emit(4, "link", "LINK_STATE: Interface %s changed state to %s", iface, state)
	}
	return changed
}

// setBGP is called by the fleet to move a BGP session's state.
func (d *Device) setBGP(peerAddr, state string) {
	d.mu.Lock()
	p, ok := d.bgpPeers[peerAddr]
	changed := ok && p.State != state
	if ok {
		p.State = state
	}
	d.mu.Unlock()
	if changed {
		d.emit(5, "bgp", "BGP_SESSION: neighbor %s moved to %s", peerAddr, state)
	}
}

func (d *Device) setLLDP(neighbors []LLDPNeighbor) {
	d.mu.Lock()
	d.lldp = make(map[string]LLDPNeighbor, len(neighbors))
	for _, n := range neighbors {
		d.lldp[n.LocalInterface] = n
	}
	d.mu.Unlock()
}

// setLLDPEntry installs or refreshes the adjacency on one local interface
// (incremental recompute path).
func (d *Device) setLLDPEntry(n LLDPNeighbor) {
	d.mu.Lock()
	if d.lldp == nil {
		d.lldp = make(map[string]LLDPNeighbor, 4)
	}
	d.lldp[n.LocalInterface] = n
	d.mu.Unlock()
}

// clearLLDPEntry drops the adjacency on one local interface.
func (d *Device) clearLLDPEntry(localIface string) {
	d.mu.Lock()
	delete(d.lldp, localIface)
	d.mu.Unlock()
}

// pruneLLDP drops adjacencies on local interfaces not in keep — interfaces
// that lost their cable since the entry was installed.
func (d *Device) pruneLLDP(keep map[string]bool) {
	d.mu.Lock()
	for local := range d.lldp {
		if !keep[local] {
			delete(d.lldp, local)
		}
	}
	d.mu.Unlock()
}

// indexSnapshot returns the running config and the configured BGP peer
// addresses regardless of reachability — simulation bookkeeping for the
// fleet's ownership and session indexes, not a management operation.
func (d *Device) indexSnapshot() (cfg string, peers []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cfg = d.running
	peers = make([]string, 0, len(d.bgpPeers))
	for addr := range d.bgpPeers {
		peers = append(peers, addr)
	}
	return cfg, peers
}

// ifaceNames returns the configured interface names without advancing
// traffic counters or requiring reachability (incremental recompute path).
func (d *Device) ifaceNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.ifaces))
	for name := range d.ifaces {
		out = append(out, name)
	}
	return out
}

// ShowInterfaces returns interface status with monotonically advancing
// traffic counters.
func (d *Device) ShowInterfaces() ([]IfaceStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	d.advanceCountersLocked()
	out := make([]IfaceStatus, 0, len(d.ifaces))
	for name, st := range d.ifaces {
		status := "down"
		if st.operUp {
			status = "up"
		}
		out = append(out, IfaceStatus{
			Name: name, OperStatus: status, SpeedMbps: st.speedMbps,
			InOctets: st.inOctets, OutOctets: st.outOctets,
		})
	}
	sortIfaces(out)
	return out, nil
}

func sortIfaces(xs []IfaceStatus) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Name < xs[j-1].Name; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func (d *Device) advanceCountersLocked() {
	elapsed := d.now().Sub(d.bootTime).Seconds()
	for _, st := range d.ifaces {
		if st.operUp {
			st.inOctets = uint64(elapsed * float64(st.rate) * (0.5 + d.traffic))
			st.outOctets = uint64(elapsed * float64(st.rate) * (0.4 + d.traffic))
		}
	}
}

// ShowLLDPNeighbors returns the current LLDP adjacency table.
func (d *Device) ShowLLDPNeighbors() ([]LLDPNeighbor, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	out := make([]LLDPNeighbor, 0, len(d.lldp))
	for _, n := range d.lldp {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].LocalInterface < out[j-1].LocalInterface; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// ShowBGPSummary returns BGP peer states.
func (d *Device) ShowBGPSummary() ([]BGPPeerStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	out := make([]BGPPeerStatus, 0, len(d.bgpPeers))
	for _, p := range d.bgpPeers {
		out = append(out, *p)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].PeerAddr < out[j-1].PeerAddr; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// ShowVersion returns device identity and uptime.
func (d *Device) ShowVersion() (VersionInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return VersionInfo{}, err
	}
	return VersionInfo{
		Name:      d.name,
		Vendor:    string(d.vendor),
		OSVersion: d.osVersion,
		UptimeS:   int64(d.now().Sub(d.bootTime).Seconds()),
	}, nil
}

// Counters returns SNMP-style gauges.
func (d *Device) Counters() (map[string]float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	up := 0
	for _, st := range d.ifaces {
		if st.operUp {
			up++
		}
	}
	return map[string]float64{
		// CPU tracks control-plane size plus offered traffic.
		"cpu_util":    10 + d.traffic*50 + float64(len(d.ifaces)),
		"mem_util":    30 + float64(len(d.running))/100000,
		"ifaces_up":   float64(up),
		"ifaces_down": float64(len(d.ifaces) - up),
	}, nil
}

// TrafficLoad returns the device's offered load (0 when drained).
func (d *Device) TrafficLoad() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.traffic
}

// SetTrafficLoad sets offered load; the fleet drives this, deployment's
// drain checks read it.
func (d *Device) SetTrafficLoad(l float64) {
	d.mu.Lock()
	d.traffic = l
	d.mu.Unlock()
}

// --- failure injection ---

// SetDown makes the device unreachable (true) or reachable (false).
func (d *Device) SetDown(down bool) {
	d.mu.Lock()
	d.down = down
	cb := d.onHealth
	d.mu.Unlock()
	if cb != nil {
		cb(d)
	}
}

// Reachable reports whether management operations will succeed.
func (d *Device) Reachable() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.down
}

// Reboot resets uptime and flaps every interface, emitting the critical
// syslog messages a real reboot produces.
func (d *Device) Reboot() {
	d.emit(2, "system", "DEVICE_REBOOT: System reboot requested")
	d.mu.Lock()
	d.bootTime = d.now()
	var flapped []string
	for name, st := range d.ifaces {
		if st.operUp {
			flapped = append(flapped, name)
		}
	}
	cb := d.onHealth
	d.mu.Unlock()
	for _, name := range flapped {
		d.setLink(name, false)
	}
	for _, name := range flapped {
		d.setLink(name, true)
	}
	if cb != nil {
		cb(d)
	}
}

// UpgradeOS installs a new OS version: the device reboots and comes back
// on the new release (the §1 "OS upgrade" task).
func (d *Device) UpgradeOS(version string) {
	d.emit(4, "system", "OS_UPGRADE: installing version %s", version)
	d.mu.Lock()
	d.osVersion = version
	d.mu.Unlock()
	d.Reboot()
}

// RemoveLinecard takes down every interface whose name indicates the given
// slot (et<slot>/N), simulating a linecard pull.
func (d *Device) RemoveLinecard(slot int) {
	d.emit(1, "hw", "LINECARD_REMOVED: Linecard in slot %d removed", slot)
	prefix := fmt.Sprintf("et%d/", slot)
	prefixV2 := fmt.Sprintf("et-%d/", slot)
	d.mu.Lock()
	var affected []string
	for name := range d.ifaces {
		if strings.HasPrefix(name, prefix) || strings.HasPrefix(name, prefixV2) {
			affected = append(affected, name)
		}
	}
	cb := d.onHealth
	d.mu.Unlock()
	for _, name := range affected {
		d.setLink(name, false)
	}
	if cb != nil {
		cb(d)
	}
}
