package netsim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// faultSchedule runs n commits against a fresh device under policy p and
// records which ones failed and how.
func faultSchedule(p *FaultPolicy, n int) []string {
	d := NewDevice("psw-a.pop1", Vendor1, "psw", "pop1")
	d.SetFaultPolicy(p)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if err := d.LoadConfig(v1Config); err != nil {
			out = append(out, "load:"+errKind(err))
			continue
		}
		if err := d.Commit(); err != nil {
			out = append(out, "commit:"+errKind(err))
			continue
		}
		out = append(out, "ok")
	}
	return out
}

func errKind(err error) string {
	switch {
	case errors.Is(err, ErrInjectedTransient):
		return "transient"
	case errors.Is(err, ErrConnDropped):
		return "dropped"
	case errors.Is(err, ErrGarbledReply):
		return "garbled"
	default:
		return "other"
	}
}

func chaosPolicy(seed int64) *FaultPolicy {
	p := NewFaultPolicy(seed)
	p.Add(FaultRule{Kind: FaultTransient, Probability: 0.3})
	p.Add(FaultRule{Kind: FaultDropBefore, Probability: 0.15})
	p.Add(FaultRule{Kind: FaultDropAfter, Probability: 0.15})
	return p
}

func TestFaultScheduleDeterministic(t *testing.T) {
	a := faultSchedule(chaosPolicy(42), 200)
	b := faultSchedule(chaosPolicy(42), 200)
	c := faultSchedule(chaosPolicy(43), 200)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatal("same seed produced different fault schedules")
	}
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
	failed := 0
	for _, s := range a {
		if s != "ok" {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("schedule should mix successes and failures, got %d/%d failed", failed, len(a))
	}
}

func TestFaultDropBeforeLeavesConfigUntouched(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	p := NewFaultPolicy(1)
	p.Add(FaultRule{Kind: FaultDropBefore, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	d.SetFaultPolicy(p)
	if err := d.LoadConfig(v1Config); err != nil {
		t.Fatal(err)
	}
	err := d.Commit()
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("commit = %v, want ErrConnDropped", err)
	}
	if cfg, _ := d.RunningConfig(); cfg != "" {
		t.Error("drop-before must not apply the commit")
	}
	// Candidate survives; the retry commits clean once the rule is spent.
	if err := d.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if cfg, _ := d.RunningConfig(); cfg != v1Config {
		t.Error("retry did not apply the config")
	}
}

func TestFaultDropAfterAppliesConfig(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	p := NewFaultPolicy(1)
	p.Add(FaultRule{Kind: FaultDropAfter, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	d.SetFaultPolicy(p)
	if err := d.LoadConfig(v1Config); err != nil {
		t.Fatal(err)
	}
	err := d.Commit()
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("commit = %v, want ErrConnDropped", err)
	}
	if cfg, _ := d.RunningConfig(); cfg != v1Config {
		t.Error("drop-after must apply the commit before losing the reply — that's what makes it ambiguous")
	}
}

func TestFaultGarbledCorruptsReply(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	if err := d.LoadConfig(v1Config); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	p := NewFaultPolicy(1)
	p.Add(FaultRule{Kind: FaultGarbled, Probability: 1, Verbs: []string{"show running-config"}, MaxCount: 1})
	d.SetFaultPolicy(p)
	body, err := d.RunningConfig()
	if !errors.Is(err, ErrGarbledReply) {
		t.Fatalf("RunningConfig err = %v, want ErrGarbledReply", err)
	}
	if body == v1Config {
		t.Error("garbled reply should not equal the true config")
	}
	// Device state is intact: the next read is clean.
	if body, err := d.RunningConfig(); err != nil || body != v1Config {
		t.Errorf("second read = %q, %v", body, err)
	}
}

func TestFaultRebootAfterCommit(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	p := NewFaultPolicy(1)
	p.Add(FaultRule{Kind: FaultReboot, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	d.SetFaultPolicy(p)
	if err := d.LoadConfig(v1Config); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatalf("reboot fault must not fail the commit itself: %v", err)
	}
	if cfg, _ := d.RunningConfig(); cfg != v1Config {
		t.Error("config must survive the reboot (it was committed)")
	}
	if got := p.Counts()[FaultReboot]; got != 1 {
		t.Errorf("reboot injections = %d, want 1", got)
	}
}

func TestFaultPolicyMaxCountAndDisable(t *testing.T) {
	d := NewDevice("a", Vendor1, "psw", "pop1")
	p := NewFaultPolicy(7)
	p.Add(FaultRule{Kind: FaultTransient, Probability: 1, MaxCount: 2})
	d.SetFaultPolicy(p)
	fails := 0
	for i := 0; i < 5; i++ {
		if err := d.LoadConfig(v1Config); err != nil {
			fails++
		}
	}
	if fails != 2 {
		t.Errorf("MaxCount=2 rule fired %d times", fails)
	}
	p.SetDisabled(true)
	p.Add(FaultRule{Kind: FaultTransient, Probability: 1})
	if err := d.LoadConfig(v1Config); err != nil {
		t.Errorf("disabled policy still injecting: %v", err)
	}
	if p.Total() != 2 {
		t.Errorf("Total() = %d, want 2", p.Total())
	}
	if s := p.String(); !strings.Contains(s, "seed=7") || !strings.Contains(s, "transient") {
		t.Errorf("String() = %q", s)
	}
}

func TestMgmtTCPConnDropAndRedial(t *testing.T) {
	f := NewFleet()
	f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	p := NewFaultPolicy(3)
	p.Add(FaultRule{Kind: FaultDropAfter, Probability: 1, Verbs: []string{"commit"}, MaxCount: 1})
	f.SetFaultPolicy(p)
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialMgmt(srv.Addr(), "pr1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadConfig(v2Config); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("commit over TCP = %v, want ErrConnDropped", err)
	}
	// The drop was injected *after* apply: the device runs the config,
	// and the client transparently redials to read it back.
	cfg, err := c.RunningConfig()
	if err != nil {
		t.Fatalf("post-drop readback: %v", err)
	}
	if cfg != v2Config {
		t.Error("drop-after over TCP should have applied the commit")
	}
}

func TestMgmtTCPGarbledReply(t *testing.T) {
	f := NewFleet()
	f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	p := NewFaultPolicy(3)
	p.Add(FaultRule{Kind: FaultGarbled, Probability: 1, Verbs: []string{"show running-config"}, MaxCount: 1})
	f.SetFaultPolicy(p)
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialMgmt(srv.Addr(), "pr1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadConfig(v2Config); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunningConfig(); !errors.Is(err, ErrGarbledReply) {
		t.Fatalf("garbled read = %v, want ErrGarbledReply", err)
	}
	if cfg, err := c.RunningConfig(); err != nil || cfg != v2Config {
		t.Errorf("clean retry after garble = %v (len %d)", err, len(cfg))
	}
}

func TestMgmtClientDeadlineTimeout(t *testing.T) {
	f := NewFleet()
	f.AddDevice("pr1.pop1", Vendor2, "pr", "pop1")
	p := NewFaultPolicy(3)
	p.Add(FaultRule{Kind: FaultLatency, Probability: 1, Latency: 300 * time.Millisecond, Verbs: []string{"show running-config"}, MaxCount: 1})
	f.SetFaultPolicy(p)
	srv, err := f.ServeMgmt("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialMgmt(srv.Addr(), "pr1.pop1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetOpTimeout(50 * time.Millisecond)
	if _, err := c.RunningConfig(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("slow reply = %v, want ErrTimeout", err)
	}
	// The timed-out session is broken; the next op must redial and work.
	c.SetOpTimeout(2 * time.Second)
	if _, err := c.RunningConfig(); err != nil {
		t.Fatalf("post-timeout redial: %v", err)
	}
}
