// Package chaos holds the fleet-scale fault-injection soak suite: the
// full Robotron pipeline — design, generation, deployment, monitoring,
// reconciliation — run against a simulated fleet whose management plane
// fails on a deterministic, seed-reproducible schedule (ISSUE: the
// paper's scale claims only hold if one flaky session costs a retry,
// not a failed phase; see DESIGN.md §11 for the fault model).
//
// Everything here is a test; run it with `make chaos`.
package chaos
