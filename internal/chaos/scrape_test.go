package chaos

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/fbnet/service"
	"github.com/robotron-net/robotron/internal/netsim"
)

// sampleRe matches one Prometheus text-format sample line:
// name{labels} value  |  name value
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|NaN)$`)

// scrape GETs /metrics and parses every sample into family → summed value.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for i, line := range regexp.MustCompile(`\r?\n`).Split(string(body), -1) {
		if line == "" || line[0] == '#' {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("metrics line %d does not parse as a Prometheus sample: %q", i+1, line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("metrics line %d value %q: %v", i+1, m[3], err)
		}
		out[m[1]] += v
	}
	return out
}

// TestMetricsScrapeExposesChaosSeries drives a small faulty deployment
// and a store failover, then scrapes the real /metrics endpoint and
// checks that every chaos-related series this PR added is present and
// parseable — injected faults by kind, deploy retries, ambiguous-commit
// resolutions, reconcile transport retries, service degraded gauge and
// promotions counter.
func TestMetricsScrapeExposesChaosSeries(t *testing.T) {
	policy := netsim.NewFaultPolicy(7)
	policy.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: 1,
		Verbs: []string{"commit"}, MaxCount: 1})
	policy.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: 1,
		Verbs: []string{"commit"}, MaxCount: 1})
	retry := &deploy.RetryPolicy{Seed: 7, Sleep: func(time.Duration) {}}

	r, err := core.New(core.Options{
		FaultPolicy:      policy,
		DeployRetry:      retry,
		EnableReconciler: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Reconciler.Stop()

	// A store deployment failing over shares the same registry.
	dep, err := service.NewDeployment(fbnet.NewCatalog(), "ash", []string{"ash", "fra"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	dep.Instrument(r.Telemetry)
	dep.KillMaster()
	if _, err := dep.PromoteBest(); err != nil {
		t.Fatal(err)
	}

	// A tiny faulty deployment to move the counters off zero: provision
	// clean, then push an intent change through the retrying commit
	// pipeline with the faults armed.
	policy.SetDisabled(true)
	ctx := design.ChangeContext{EmployeeID: "chaos", TicketID: "T-scrape", Description: "scrape test", Domain: "pop"}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	policy.SetDisabled(false)
	if _, err := r.Designer.EnsureFirewallPolicy(ctx, design.FirewallSpec{
		Name: "scrape-cp", Direction: "in",
		Rules: []design.FirewallRuleSpec{{Action: "deny", Protocol: "any"}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AttachFirewall(ctx, "scrape-cp", res.Devices); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy(res.Devices, deploy.Options{}, "chaos"); err != nil {
		t.Fatalf("faulty deploy should succeed via retry: %v", err)
	}

	srv, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	families := scrape(t, fmt.Sprintf("http://%s/metrics", srv.Addr))
	for _, name := range []string{
		"robotron_netsim_injected_faults_total",
		"robotron_deploy_retries_total",
		"robotron_deploy_ambiguous_resolutions_total",
		"robotron_reconcile_transport_retries_total",
		"robotron_service_degraded",
		"robotron_service_promotions_total",
	} {
		if _, ok := families[name]; !ok {
			t.Errorf("scrape missing series %s", name)
		}
	}
	if families["robotron_netsim_injected_faults_total"] < 2 {
		t.Errorf("injected faults = %v, want >= 2", families["robotron_netsim_injected_faults_total"])
	}
	if families["robotron_deploy_retries_total"] < 1 {
		t.Errorf("deploy retries = %v, want >= 1", families["robotron_deploy_retries_total"])
	}
	if families["robotron_deploy_ambiguous_resolutions_total"] < 1 {
		t.Errorf("ambiguous resolutions = %v, want >= 1", families["robotron_deploy_ambiguous_resolutions_total"])
	}
	if families["robotron_service_promotions_total"] != 1 {
		t.Errorf("promotions = %v, want 1", families["robotron_service_promotions_total"])
	}
	if families["robotron_service_degraded"] != 0 {
		t.Errorf("degraded gauge = %v, want 0 after promotion", families["robotron_service_degraded"])
	}
}
