package chaos

import (
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/reconcile"
)

// soakSeed fixes the entire fault schedule: every injection decision is
// a pure function of (seed, device, verb, call#), so a failing run is
// reproduced exactly by re-running with the same seed.
const soakSeed = 424242

func soakCtx() design.ChangeContext {
	return design.ChangeContext{EmployeeID: "chaos", TicketID: "T-chaos", Description: "chaos soak", Domain: "dc"}
}

// soakPolicy arms four fault kinds against the verbs the deployment and
// monitoring pipelines actually drive.
func soakPolicy() *netsim.FaultPolicy {
	p := netsim.NewFaultPolicy(soakSeed)
	p.Add(netsim.FaultRule{Kind: netsim.FaultTransient, Probability: 0.15,
		Verbs: []string{"commit", "commit-confirmed", "load-config"}})
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropBefore, Probability: 0.05,
		Verbs: []string{"commit", "commit-confirmed"}})
	p.Add(netsim.FaultRule{Kind: netsim.FaultDropAfter, Probability: 0.05,
		Verbs: []string{"commit", "commit-confirmed"}})
	p.Add(netsim.FaultRule{Kind: netsim.FaultGarbled, Probability: 0.03,
		Verbs: []string{"show running-config"}})
	return p
}

// injectDrift rewrites a device's running config out from under the
// management plane. The writes go through the same faulty management
// verbs as everything else, so they are retried until they land.
func injectDrift(t *testing.T, d *netsim.Device, cfg string) {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		if err := d.LoadConfig(cfg); err != nil {
			continue
		}
		if err := d.Commit(); err == nil || deploy.Classify(err) == deploy.ClassAmbiguous {
			// Ambiguous means the commit may have landed; verify below.
			if got, err := d.RunningConfig(); err == nil && got == cfg {
				return
			}
			continue
		}
	}
	t.Fatalf("could not inject drift on %s in 50 attempts (seed=%d)", d.Name(), soakSeed)
}

// TestChaosSoak is the acceptance soak: a 64-device cluster is
// provisioned clean, then a fleet-wide intent change is deployed while
// four fault kinds fire on a fixed seed, and operators scribble on a
// handful of devices. Once the chaos stops, the reconciler must drive
// every device back to golden (or explicitly quarantine it), with zero
// pending commit-confirm timers left anywhere.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not a -short test")
	}
	t.Logf("chaos soak: seed=%d (fault schedule is a pure function of this seed)", soakSeed)

	policy := soakPolicy()
	policy.SetDisabled(true) // provision a clean baseline first
	retry := &deploy.RetryPolicy{Seed: soakSeed, MaxAttempts: 6, Sleep: func(time.Duration) {}}
	clk := reconcile.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))

	r, err := core.New(core.Options{
		FaultPolicy:      policy,
		DeployRetry:      retry,
		EnableReconciler: true,
		Reconcile: reconcile.Config{
			Clock:             clk,
			DampingThreshold:  -1, // chaos re-detects drift; damping would mass-quarantine
			BudgetMaxDevices:  128,
			BudgetMaxFraction: 1,
			MaxCheckRetries:   5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Reconciler.Stop()

	if _, err := r.Designer.EnsureSite("dc1", "dc", "apac"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ProvisionCluster(soakCtx(), "dc1", "dc1-c1", design.DCGen1(44)); err != nil {
		t.Fatal(err)
	}
	// The cluster template provisions the fabric; the racks' TORs join
	// through the fleet-wide deploy below. Target every device at the
	// site so the storm covers the whole 64-device fleet.
	devices, err := r.DevicesOfSite("dc1")
	if err != nil {
		t.Fatal(err)
	}
	if len(devices) < 64 {
		t.Fatalf("fleet size = %d, want >= 64", len(devices))
	}
	t.Logf("provisioned %d devices clean; enabling faults", len(devices))
	policy.SetDisabled(false)

	// The storm: a fleet-wide intent change deployed while the
	// management plane misbehaves. Per-device failures are tolerated
	// here — the golden intent is committed first, so whatever the storm
	// leaves behind is drift for the reconciler.
	if _, err := r.Designer.EnsureFirewallPolicy(soakCtx(), design.FirewallSpec{
		Name: "chaos-cp", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "10.0.0.0/8", DstPort: 179},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AttachFirewall(soakCtx(), "chaos-cp", devices); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy(devices, deploy.Options{}, "chaos"); err != nil {
		t.Logf("deploy storm left failures for the reconciler: %v", err)
	}

	// Operators (or agents) scribble on a handful of devices while the
	// faults are still firing.
	for _, name := range devices[:6] {
		d, ok := r.Fleet.Device(name)
		if !ok {
			t.Fatalf("device %s missing from fleet", name)
		}
		cfg, err := r.Generator.Golden(name)
		if err != nil {
			t.Fatal(err)
		}
		injectDrift(t, d, cfg+"\n! chaos drift on "+name)
	}

	settled := func() (bool, []string) {
		states := r.Reconciler.States()
		var bad []string
		for _, name := range devices {
			if states[name] == reconcile.StateQuarantined {
				continue // explicitly parked for operator review
			}
			d, ok := r.Fleet.Device(name)
			if !ok {
				bad = append(bad, name+" (missing)")
				continue
			}
			golden, err := r.Generator.Golden(name)
			if err != nil {
				bad = append(bad, name+" (no golden)")
				continue
			}
			if running, err := d.RunningConfig(); err != nil || running != golden {
				bad = append(bad, name)
			}
		}
		return len(bad) == 0, bad
	}

	policy.SetDisabled(true) // chaos window over: convergence must be total
	var unconverged []string
	ok := false
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		r.Reconciler.Sweep()
		clk.Advance(30 * time.Minute) // fire every backoff/recheck timer due
		if ok, unconverged = settled(); ok {
			break
		}
	}
	if !ok {
		t.Fatalf("seed=%d: %d device(s) neither converged nor quarantined: %v\n%s",
			soakSeed, len(unconverged), unconverged, r.Reconciler.DeviceTable())
	}

	// No device may be left holding a provisional commit: every
	// commit-confirm either confirmed or rolled back.
	for _, d := range r.Fleet.Devices() {
		if d.ConfirmPending() {
			t.Errorf("seed=%d: %s still has a pending commit-confirm", soakSeed, d.Name())
		}
	}

	// The soak only proves robustness if the faults actually fired —
	// across at least 3 distinct kinds.
	counts := policy.Counts()
	kinds := 0
	for _, n := range counts {
		if n > 0 {
			kinds++
		}
	}
	if policy.Total() == 0 || kinds < 3 {
		t.Fatalf("seed=%d: fault engine too quiet: %s", soakSeed, policy.String())
	}
	if got := r.Telemetry.Counter("robotron_deploy_retries_total").Value(); got == 0 {
		t.Error("chaos run recorded zero deploy retries — retry layer never engaged")
	}

	// Budget witness: the journal's high-water marks prove the safety
	// budget held in every failure domain throughout the storm (one site
	// here, so its shard budget equals the configured device cap).
	for shard, max := range r.Reconciler.Journal().MaxActiveByShard() {
		if max > 128 {
			t.Errorf("seed=%d: shard %s peaked at %d concurrent remediations, budget 128", soakSeed, shard, max)
		}
	}

	stats := r.Reconciler.Stats()
	quarantined := 0
	for _, s := range r.Reconciler.States() {
		if s == reconcile.StateQuarantined {
			quarantined++
		}
	}
	t.Logf("soak done: faults=%s; reconciler %s; quarantined=%d; journal events=%d",
		policy.String(), stats.String(), quarantined, len(r.Reconciler.Journal().Events()))

	sum := strings.Builder{}
	for k, n := range counts {
		if n > 0 {
			sum.WriteString(string(k))
			sum.WriteString(" ")
		}
	}
	t.Logf("fault kinds fired: %s", sum.String())
}
