// Package reconcile closes Robotron's monitoring loop (SIGCOMM '16, §3,
// §5.4.3): config monitoring *detects* running-config drift; this package
// *drives it back* to the golden intent, automatically and safely.
//
// Each drifting device moves through an explicit state machine —
// detected → backoff → remediating → confirming → converged|quarantined —
// with the robustness machinery a production control loop needs:
//
//   - Deterministic per-device exponential backoff (jitter-free; a
//     virtual clock makes schedules reproducible in tests).
//   - Flap damping: a device that keeps drifting inside the damping
//     window is quarantined for operator review instead of being fought.
//   - Failure-domain sharding: every device maps to a shard (its FBNet
//     site, or a deterministic name-prefix fallback) that owns its own
//     safety budget min(K, X·shard_fleet), circuit breaker, and deploy
//     token bucket — a drift storm in one site trips only that shard
//     while every other domain keeps converging. A global aggregate
//     breaker (≥N shards open, or fleet-wide demand over a global cap)
//     remains as the last-resort halt; mass drift usually means the
//     *desired* state is wrong, and redeploying it everywhere would
//     propagate the error.
//   - Paced drain on breaker reset: the backlog is released DrainBatch
//     devices per DrainEvery per shard instead of re-arming everything
//     at once.
//   - A durable event journal and counters, so every decision the loop
//     made is auditable after the fact — and replayable: a restarted
//     reconciler built with ResumeFromJournal picks up exactly where the
//     killed process stopped (see recover.go).
//
// Remediation itself reuses the existing pipeline: the memoized config
// generator recomputes golden intent, and the deployment engine pushes it
// with commit-confirm so a failed health check rolls the device back.
package reconcile

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// GoldenSource regenerates and records a device's intended config;
// *configgen.Generator implements it (memoized, so a fleet-wide sweep
// after a small change costs O(changed devices)).
type GoldenSource interface {
	GenerateDevice(name string) (string, error)
	CommitGolden(device, config, author, message string) (revctl.Revision, error)
}

// ConfigDeployer pushes configs; *deploy.Deployer implements it.
type ConfigDeployer interface {
	Deploy(configs map[string]string, opts deploy.Options) (deploy.Report, error)
}

// Checker re-collects a device's running config and compares it to
// golden; *monitor.ConfigMonitor implements it. A nil Deviation means the
// device conforms.
type Checker interface {
	CheckDevice(device string) (*monitor.Deviation, error)
}

// Deps are the reconciler's collaborators.
type Deps struct {
	Golden   GoldenSource
	Deployer ConfigDeployer
	Checker  Checker
	// FleetSize sizes the fractional safety budget; nil or 0 falls back
	// to BudgetMaxDevices alone.
	FleetSize func() int
	// SweepList names the devices the periodic sweep checks; nil
	// disables sweeping regardless of SweepInterval.
	SweepList func() []string
	// SiteOf maps a device to its failure-domain shard (FBNet site
	// membership). Nil, or an empty return, falls back to the
	// deterministic name-prefix rule in DeriveShard.
	SiteOf func(device string) string
	// ShardFleetSize sizes one shard's fractional budget
	// min(K, X·shard_fleet); nil falls back to FleetSize.
	ShardFleetSize func(shard string) int
}

// Reconciler is the closed-loop drift controller. Construct with New,
// subscribe HandleDeviation to ConfigMonitor.OnDeviation (and
// HandleCheckError to OnCheckError), then Start.
type Reconciler struct {
	deps    Deps
	cfg     Config
	clock   Clock
	journal *Journal

	mu            sync.Mutex
	devices       map[string]*deviceState
	shards        map[string]*shard
	active        int // devices in remediating|confirming, fleet-wide
	open          int // devices in detected|backoff|remediating|confirming, fleet-wide
	trippedShards int // shards whose breaker is currently open
	globalTripped bool
	globalTrips   int64
	stopped       bool
	met           reconcileMetrics
	reg           *telemetry.Registry // per-shard metric home; swapped by Instrument
	sweepTimer    Timer

	wg sync.WaitGroup // in-flight remediations
}

// New builds a reconciler; call Start to arm the periodic sweep.
func New(deps Deps, cfg Config) *Reconciler {
	cfg = cfg.withDefaults()
	// Private registry so Stats() works unwired; Instrument rebinds.
	reg := telemetry.NewRegistry()
	r := &Reconciler{
		deps:    deps,
		cfg:     cfg,
		clock:   cfg.Clock,
		journal: NewJournal(cfg.JournalSink),
		devices: make(map[string]*deviceState),
		shards:  make(map[string]*shard),
		met:     bindReconcileMetrics(reg),
		reg:     reg,
	}
	return r
}

// Start arms the periodic full-fleet sweep (no-op when SweepInterval is 0
// or no SweepList was provided). Event-driven reconciliation needs no
// Start: HandleDeviation works from construction.
func (r *Reconciler) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped || r.cfg.SweepInterval <= 0 || r.deps.SweepList == nil || r.sweepTimer != nil {
		return
	}
	r.armSweepLocked()
}

func (r *Reconciler) armSweepLocked() {
	r.sweepTimer = r.clock.AfterFunc(r.cfg.SweepInterval, func() {
		r.Sweep()
		r.mu.Lock()
		if !r.stopped {
			r.armSweepLocked()
		}
		r.mu.Unlock()
	})
}

// Stop halts the loop: pending timers are cancelled, new deviations are
// ignored, and Stop blocks until in-flight remediations settle.
func (r *Reconciler) Stop() {
	r.mu.Lock()
	r.stopped = true
	if r.sweepTimer != nil {
		r.sweepTimer.Stop()
		r.sweepTimer = nil
	}
	for _, ds := range r.devices {
		if ds.timer != nil {
			ds.timer.Stop()
			ds.timer = nil
			ds.timerArmed = false
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// HandleDeviation is the ConfigMonitor.OnDeviation subscriber: every
// detected drift enters the state machine here.
func (r *Reconciler) HandleDeviation(d monitor.Deviation) {
	r.noteDrift(d.Device, fmt.Sprintf("drift +%d/-%d lines", d.Added, d.Removed))
}

// noteDrift admits one drift observation for device name.
func (r *Reconciler) noteDrift(name, detail string) {
	var alerts []string
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	ds := r.ensureLocked(name)
	switch ds.state {
	case StateDetected, StateBackoff, StateRemediating, StateConfirming:
		// Already in the loop; the post-deploy check or the pending
		// timer covers this observation.
		r.mu.Unlock()
		return
	case StateQuarantined:
		r.met.suppressed.Inc()
		r.eventLocked(name, ds.shard, EvSuppressed, "drift on quarantined device ignored")
		r.mu.Unlock()
		return
	}
	now := r.clock.Now()
	ds.detections = pruneWindow(append(ds.detections, now), now, r.cfg.DampingWindow)
	r.met.detected.Inc()
	r.setStateLocked(ds, StateDetected, EvDetected, detail)
	// Flap damping: the device keeps drifting — stop fighting it.
	if r.cfg.DampingThreshold > 0 && len(ds.detections) >= r.cfg.DampingThreshold {
		r.met.quarantined.Inc()
		r.setStateLocked(ds, StateQuarantined,
			EvQuarantined, fmt.Sprintf("%d drifts within %v (flap damping)", len(ds.detections), r.cfg.DampingWindow))
		alerts = append(alerts, fmt.Sprintf("reconcile: %s quarantined after %d drifts within %v — operator review required",
			name, len(ds.detections), r.cfg.DampingWindow))
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	sh := ds.shard
	if r.globalTripped || sh.tripped {
		r.eventLocked(name, sh, EvHalted, "breaker open: drift recorded, remediation not scheduled")
		r.mu.Unlock()
		return
	}
	// Safety budget on *demand*, per failure domain: count every
	// unconverged device the loop is committed to in this shard (this one
	// included). Exceeding the budget means mass drift — halt the shard
	// instead of deploying; the rest of the fleet keeps converging.
	budget := r.shardBudgetLocked(sh)
	if sh.open > budget {
		r.tripShardLocked(sh, name,
			fmt.Sprintf("%d device(s) need remediation in shard %s, budget %d: shard halted", sh.open, sh.name, budget),
			&alerts)
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	// Fleet-wide demand cap: many shards drifting at once, each inside
	// its own budget, is still a fleet-wide event.
	if gcap := r.globalCapLocked(); gcap > 0 && r.open > gcap {
		r.tripGlobalLocked(fmt.Sprintf("%d device(s) need remediation fleet-wide, global cap %d: loop halted", r.open, gcap), &alerts)
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	r.scheduleLocked(ds, r.cfg.backoff(ds.attempt))
	r.mu.Unlock()
}

// HandleCheckError is the ConfigMonitor.OnCheckError subscriber: a
// conformance check that errored (device unreachable mid-check) lands in
// the retry queue instead of being dropped.
func (r *Reconciler) HandleCheckError(device string, err error) {
	var alerts []string
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.met.checkErrors.Inc()
	ds := r.ensureLocked(device)
	ds.checkAttempt++
	attempt := ds.checkAttempt
	detail := fmt.Sprintf("attempt %d: %v", attempt, err)
	if r.cfg.MaxCheckRetries > 0 && attempt > r.cfg.MaxCheckRetries {
		// Zero FireAt marks the give-up: replay must not re-arm a recheck.
		r.eventLocked(device, ds.shard, EvCheckError, detail)
		alerts = append(alerts, fmt.Sprintf("reconcile: conformance check on %s failed %d times (%v) — giving up until the next sweep",
			device, attempt, err))
		ds.checkAttempt = 0
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	delay := r.cfg.backoff(attempt - 1)
	r.eventAtLocked(device, ds.shard, EvCheckError, detail, r.clock.Now().Add(delay))
	r.clock.AfterFunc(delay, func() { r.recheck(device) })
	r.mu.Unlock()
}

// recheck re-runs the conformance check for a device whose earlier check
// errored. A deviation found here flows through noteDrift (directly and,
// with the real ConfigMonitor, via its OnDeviation handlers — noteDrift
// deduplicates).
func (r *Reconciler) recheck(device string) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	dev, err := r.deps.Checker.CheckDevice(device)
	if err != nil {
		r.HandleCheckError(device, err)
		return
	}
	r.mu.Lock()
	if ds := r.devices[device]; ds != nil {
		ds.checkAttempt = 0
	}
	r.mu.Unlock()
	if dev != nil {
		r.noteDrift(dev.Device, fmt.Sprintf("recheck: drift +%d/-%d lines", dev.Added, dev.Removed))
	}
}

// Sweep runs one full-fleet conformance pass now, feeding any drift (or
// check error) into the loop. Returns the number of devices checked.
func (r *Reconciler) Sweep() int {
	r.mu.Lock()
	if r.stopped || r.globalTripped || r.deps.SweepList == nil {
		r.mu.Unlock()
		return 0
	}
	skip := make(map[string]bool, len(r.devices))
	for name, ds := range r.devices {
		if ds.shard.tripped {
			// Shard breaker open: drift there is already known en masse;
			// checking would only journal halted-spam.
			skip[name] = true
			continue
		}
		switch ds.state {
		case StateDetected, StateBackoff, StateRemediating, StateConfirming, StateQuarantined:
			skip[name] = true
		}
	}
	trippedShards := make(map[string]bool)
	for name, sh := range r.shards {
		if sh.tripped {
			trippedShards[name] = true
		}
	}
	r.mu.Unlock()
	list := r.deps.SweepList()
	checked := 0
	for _, name := range list {
		if skip[name] {
			continue
		}
		// Untracked devices still belong to a (possibly tripped) shard.
		if len(trippedShards) > 0 && trippedShards[r.shardNameOf(name)] {
			continue
		}
		checked++
		dev, err := r.deps.Checker.CheckDevice(name)
		if err != nil {
			r.HandleCheckError(name, err)
			continue
		}
		r.mu.Lock()
		if ds := r.devices[name]; ds != nil {
			ds.checkAttempt = 0
		}
		r.mu.Unlock()
		if dev != nil {
			r.noteDrift(dev.Device, fmt.Sprintf("sweep: drift +%d/-%d lines", dev.Added, dev.Removed))
		}
	}
	r.mu.Lock()
	r.eventLocked("", nil, EvSweep, fmt.Sprintf("%d device(s) checked", checked))
	r.mu.Unlock()
	return checked
}

// tryRemediate fires when a device's backoff delay elapses.
func (r *Reconciler) tryRemediate(name string) {
	var alerts []string
	r.mu.Lock()
	ds := r.devices[name]
	if r.stopped || ds == nil || ds.state != StateBackoff {
		r.mu.Unlock()
		return
	}
	ds.timerArmed = false
	ds.timer = nil
	sh := ds.shard
	if r.globalTripped || sh.tripped {
		// Breaker opened while we waited; park in backoff (no timer) for
		// ResetBreaker to resume.
		r.mu.Unlock()
		return
	}
	// Defense in depth: the demand-side trip in noteDrift keeps open
	// devices within budget, so in-flight remediations can never exceed
	// it — but verify at the acquire point too.
	budget := r.shardBudgetLocked(sh)
	if sh.active >= budget {
		r.tripShardLocked(sh, name,
			fmt.Sprintf("%d remediation(s) already in flight in shard %s, budget %d: shard halted", sh.active, sh.name, budget),
			&alerts)
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	if sh.bucket != nil {
		now := r.clock.Now()
		if wait := sh.bucket.take(now); wait > 0 {
			r.met.rateLimited.Inc()
			r.eventAtLocked(name, sh, EvRateLimited, fmt.Sprintf("deploy token in %v", wait), now.Add(wait))
			r.rearmLocked(ds, wait)
			r.mu.Unlock()
			return
		}
	}
	r.active++
	sh.active++
	r.setStateLocked(ds, StateRemediating, EvRemediate, fmt.Sprintf("attempt %d", ds.attempt+1))
	r.wg.Add(1)
	r.mu.Unlock()
	r.remediate(name)
}

// remediate regenerates golden intent and redeploys it with
// commit-confirm, then settles the device's state.
func (r *Reconciler) remediate(name string) {
	defer r.wg.Done()
	err := r.remediateOnce(name)

	var alerts []string
	r.mu.Lock()
	r.active--
	ds := r.devices[name]
	if ds != nil {
		ds.shard.active--
	}
	if ds == nil || r.stopped {
		r.mu.Unlock()
		return
	}
	if err == nil {
		ds.attempt = 0
		ds.checkAttempt = 0
		ds.transportAttempt = 0
		r.met.remediated.Inc()
		r.met.converged.Inc()
		r.setStateLocked(ds, StateConverged, EvConverged, "running config matches golden")
		r.mu.Unlock()
		return
	}
	if deploy.Classify(err) != deploy.ClassPermanent {
		// Transport-layer failure: the management session flapped — the
		// device never *rejected* the config, so this must not count
		// toward quarantine. It rides the bounded check-retry budget
		// instead; on exhaustion the device parks as converged and the
		// next sweep re-detects whatever drift remains.
		ds.transportAttempt++
		r.met.transportRetries.Inc()
		if r.cfg.MaxCheckRetries > 0 && ds.transportAttempt > r.cfg.MaxCheckRetries {
			n := ds.transportAttempt
			ds.transportAttempt = 0
			r.setStateLocked(ds, StateConverged, EvTransportGiveUp,
				fmt.Sprintf("%d transport failures, last: %v — awaiting next sweep", n, err))
			alerts = append(alerts, fmt.Sprintf(
				"reconcile: %s unreachable during %d remediation attempt(s) (last: %v) — giving up until the next sweep",
				name, n, err))
			r.mu.Unlock()
			r.fire(alerts)
			return
		}
		r.eventLocked(name, ds.shard, EvTransportRetry, fmt.Sprintf("attempt %d: %v", ds.transportAttempt, err))
		r.scheduleLocked(ds, r.cfg.backoff(ds.transportAttempt-1))
		r.mu.Unlock()
		return
	}
	ds.attempt++
	if r.cfg.MaxAttempts > 0 && ds.attempt >= r.cfg.MaxAttempts {
		r.met.quarantined.Inc()
		r.setStateLocked(ds, StateQuarantined,
			EvQuarantined, fmt.Sprintf("%d failed remediation attempts, last: %v", ds.attempt, err))
		alerts = append(alerts, fmt.Sprintf("reconcile: %s quarantined after %d failed remediation attempts (last: %v)",
			name, ds.attempt, err))
		r.mu.Unlock()
		r.fire(alerts)
		return
	}
	r.met.retries.Inc()
	r.eventLocked(name, ds.shard, EvRetry, err.Error())
	r.scheduleLocked(ds, r.cfg.backoff(ds.attempt))
	r.mu.Unlock()
}

// remediateOnce performs one remediation attempt end to end.
func (r *Reconciler) remediateOnce(name string) error {
	cfg, err := r.deps.Golden.GenerateDevice(name)
	if err != nil {
		return fmt.Errorf("generate: %w", err)
	}
	if _, err := r.deps.Golden.CommitGolden(name, cfg, r.cfg.Author, "reconcile: restore drifted device"); err != nil {
		return fmt.Errorf("commit golden: %w", err)
	}
	rep, err := r.deps.Deployer.Deploy(map[string]string{name: cfg}, deploy.Options{
		ConfirmGrace: r.cfg.ConfirmGrace,
		Retry:        r.cfg.DeployRetry,
	})
	if err != nil {
		if rep.Pending != nil {
			_ = rep.Pending.Rollback()
		}
		return fmt.Errorf("deploy: %w", err)
	}
	r.mu.Lock()
	if ds := r.devices[name]; ds != nil && ds.state == StateRemediating {
		r.setStateLocked(ds, StateConfirming, EvConfirming, "provisional commit, health check")
	}
	r.mu.Unlock()
	// Health check while the commit is provisional: conforming confirms,
	// anything else rolls back inside the grace window.
	dev, cerr := r.deps.Checker.CheckDevice(name)
	healthy := cerr == nil && dev == nil
	if rep.Pending != nil {
		if healthy {
			if err := rep.Pending.Confirm(); err != nil {
				return fmt.Errorf("confirm: %w", err)
			}
		} else {
			_ = rep.Pending.Rollback()
		}
	}
	if cerr != nil {
		return fmt.Errorf("post-deploy check: %w", cerr)
	}
	if dev != nil {
		return fmt.Errorf("still deviating after deploy (+%d/-%d lines)", dev.Added, dev.Removed)
	}
	return nil
}

// Release returns a quarantined device to the loop and schedules an
// immediate conformance recheck.
func (r *Reconciler) Release(name string) error {
	r.mu.Lock()
	ds := r.devices[name]
	if ds == nil || ds.state != StateQuarantined {
		r.mu.Unlock()
		return fmt.Errorf("reconcile: %s is not quarantined", name)
	}
	ds.attempt = 0
	ds.checkAttempt = 0
	ds.detections = nil
	r.setStateLocked(ds, StateConverged, EvReleased, "operator released from quarantine")
	r.clock.AfterFunc(0, func() { r.recheck(name) })
	r.mu.Unlock()
	return nil
}

// Tripped reports whether any safety-budget circuit breaker — shard or
// global — is open.
func (r *Reconciler) Tripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.globalTripped || r.trippedShards > 0
}

// ResetBreaker re-arms every tripped breaker (global and per-shard): the
// operator has inspected the mass drift and wants the backlog drained —
// paced, DrainBatch devices per DrainEvery per shard, on top of each
// device's own backoff.
func (r *Reconciler) ResetBreaker() {
	r.mu.Lock()
	if !r.globalTripped && r.trippedShards == 0 {
		r.mu.Unlock()
		return
	}
	if r.globalTripped {
		r.globalTripped = false
		r.eventLocked("", nil, EvBreakerReset, "operator re-armed the loop")
	}
	for _, name := range r.sortedShardNamesLocked() {
		sh := r.shards[name]
		if sh.tripped {
			sh.tripped = false
			r.trippedShards--
			r.eventLocked("", sh, EvBreakerReset, "operator re-armed shard "+sh.name)
		}
	}
	r.drainLocked(nil)
	r.mu.Unlock()
}

// ResetShardBreaker re-arms one shard's breaker and pace-drains only its
// backlog, leaving every other breaker position untouched.
func (r *Reconciler) ResetShardBreaker(name string) error {
	r.mu.Lock()
	sh := r.shards[name]
	if sh == nil {
		r.mu.Unlock()
		return fmt.Errorf("reconcile: unknown shard %q", name)
	}
	if sh.tripped {
		sh.tripped = false
		r.trippedShards--
		r.eventLocked("", sh, EvBreakerReset, "operator re-armed shard "+sh.name)
	}
	r.drainLocked(sh)
	r.mu.Unlock()
	return nil
}

// drainLocked releases the parked backlog: every open device without an
// armed timer (in only, when non-nil) is rescheduled at its own backoff
// plus a per-shard pacing offset — DrainBatch devices per DrainEvery —
// so a reset never re-creates the storm it is recovering from. Sorted
// order: timer order is remediation order, and map iteration would make
// the drain order (and the journal) differ run to run.
func (r *Reconciler) drainLocked(only *shard) {
	if r.globalTripped {
		return // still halted fleet-wide; the global reset drains
	}
	every := r.cfg.DrainEvery
	if every < 0 {
		every = 0
	}
	batch := r.cfg.DrainBatch
	names := make([]string, 0, len(r.devices))
	for name := range r.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	idx := make(map[*shard]int)
	for _, name := range names {
		ds := r.devices[name]
		if only != nil && ds.shard != only {
			continue
		}
		if ds.shard.tripped {
			continue
		}
		if (ds.state == StateDetected || ds.state == StateBackoff) && !ds.timerArmed {
			i := idx[ds.shard]
			idx[ds.shard]++
			pace := time.Duration(i/batch) * every
			r.scheduleLocked(ds, r.cfg.backoff(ds.attempt)+pace)
		}
	}
}

func (r *Reconciler) sortedShardNamesLocked() []string {
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns a snapshot of the counters — a thin view over the
// registry bindings (see Instrument).
func (r *Reconciler) Stats() ReconcileStats {
	r.mu.Lock()
	m := r.met
	shardTrips := make(map[string]int64)
	for name, sh := range r.shards {
		if sh.trips > 0 {
			shardTrips[name] = sh.trips
		}
	}
	globalTrips := r.globalTrips
	r.mu.Unlock()
	return ReconcileStats{
		Detected:         m.detected.Value(),
		Remediated:       m.remediated.Value(),
		Converged:        m.converged.Value(),
		Quarantined:      m.quarantined.Value(),
		BudgetTrips:      m.budgetTrips.Value(),
		Retries:          m.retries.Value(),
		RateLimited:      m.rateLimited.Value(),
		CheckErrors:      m.checkErrors.Value(),
		Suppressed:       m.suppressed.Value(),
		TransportRetries: m.transportRetries.Value(),
		GlobalTrips:      globalTrips,
		ShardTrips:       shardTrips,
	}
}

// Journal returns the event journal.
func (r *Reconciler) Journal() *Journal { return r.journal }

// States returns every tracked device's current state.
func (r *Reconciler) States() map[string]State {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]State, len(r.devices))
	for name, ds := range r.devices {
		out[name] = ds.state
	}
	return out
}

// Devices returns the exported per-device records.
func (r *Reconciler) Devices() []DeviceStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DeviceStatus, 0, len(r.devices))
	for _, ds := range r.devices {
		out = append(out, DeviceStatus{
			Device:     ds.name,
			Shard:      ds.shard.name,
			State:      ds.state,
			Attempts:   ds.attempt,
			Detections: len(ds.detections),
			ChangedAt:  ds.changedAt,
			Detail:     ds.lastDetail,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// DeviceTable renders the per-state device table for operators.
func (r *Reconciler) DeviceTable() string {
	return FormatDeviceTable(r.Devices())
}

// --- internals ---

func (r *Reconciler) ensureLocked(name string) *deviceState {
	ds := r.devices[name]
	if ds == nil {
		now := r.clock.Now()
		ds = &deviceState{name: name, state: StateConverged, changedAt: now}
		ds.shard = r.shardLocked(r.shardNameOf(name), now)
		ds.shard.devices++
		r.devices[name] = ds
	}
	return ds
}

// scheduleLocked queues a remediation attempt after delay.
func (r *Reconciler) scheduleLocked(ds *deviceState, delay time.Duration) {
	r.applyStateLocked(ds, StateBackoff)
	ds.changedAt = r.clock.Now()
	detail := fmt.Sprintf("remediation in %v (attempt %d)", delay, ds.attempt+1)
	ds.lastDetail = detail
	r.eventAtLocked(ds.name, ds.shard, EvScheduled, detail, r.clock.Now().Add(delay))
	r.rearmLocked(ds, delay)
}

// rearmLocked (re)starts the device's timer without logging a transition.
func (r *Reconciler) rearmLocked(ds *deviceState, delay time.Duration) {
	name := ds.name
	ds.timerArmed = true
	ds.timer = r.clock.AfterFunc(delay, func() { r.tryRemediate(name) })
}

func (r *Reconciler) setStateLocked(ds *deviceState, s State, typ EventType, detail string) {
	r.applyStateLocked(ds, s)
	ds.changedAt = r.clock.Now()
	ds.lastDetail = detail
	r.eventLocked(ds.name, ds.shard, typ, detail)
}

// applyStateLocked moves the device's state machine, maintaining the
// incremental open-device counters (shard and fleet-wide) that replaced
// the per-event fleet scan — O(1) per transition, which is what makes
// the budget math flat at 100k devices.
func (r *Reconciler) applyStateLocked(ds *deviceState, s State) {
	was, is := isOpenState(ds.state), isOpenState(s)
	if is && !was {
		ds.shard.open++
		r.open++
	}
	if was && !is {
		ds.shard.open--
		r.open--
	}
	ds.state = s
}

func (r *Reconciler) eventLocked(device string, sh *shard, typ EventType, detail string) {
	r.eventAtLocked(device, sh, typ, detail, time.Time{})
}

func (r *Reconciler) eventAtLocked(device string, sh *shard, typ EventType, detail string, fireAt time.Time) {
	shardName, shardActive := "", 0
	if sh != nil {
		shardName, shardActive = sh.name, sh.active
	}
	r.journal.add(r.clock.Now(), device, shardName, typ, detail, r.active, shardActive, fireAt)
}

// fire delivers alerts outside the reconciler lock.
func (r *Reconciler) fire(alerts []string) {
	if r.cfg.Alert == nil {
		return
	}
	for _, a := range alerts {
		r.cfg.Alert("%s", a)
	}
}

// pruneWindow drops detections older than window before now.
func pruneWindow(ts []time.Time, now time.Time, window time.Duration) []time.Time {
	cutoff := now.Add(-window)
	out := ts[:0]
	for _, t := range ts {
		if !t.Before(cutoff) {
			out = append(out, t)
		}
	}
	return out
}
