package reconcile

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/monitor"
)

func TestDeriveShard(t *testing.T) {
	cases := map[string]string{
		"psw1.popa-c1":  "popa",
		"pr2.popb-c2":   "popb",
		"fsw3.dc1-c4":   "dc1",
		"sw1.edge":      "edge",
		"dev00017":      "dev",
		"d1":            "d",
		"rack12switch3": "rack",
		"":              "default",
		"noDigitsHere":  "noDigitsHere",
		"9starts":       "9starts",
	}
	for in, want := range cases {
		if got := DeriveShard(in); got != want {
			t.Errorf("DeriveShard(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestShardIsolationStorm is the tentpole invariant: a drift storm in
// site A trips only A's breaker; a concurrent drift in site B still
// converges, and the per-shard budget witness holds in the journal.
func TestShardIsolationStorm(t *testing.T) {
	devsA := []string{"psw1.siteA-c1", "psw2.siteA-c1", "psw3.siteA-c1", "psw4.siteA-c1"}
	devsB := []string{"psw1.siteB-c1", "psw2.siteB-c1"}
	all := append(append([]string{}, devsA...), devsB...)
	w := newFakeWorld(all...)
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 2, BudgetMaxFraction: 1,
	})

	for _, d := range devsA {
		driftAndNotify(w, r, d)
	}
	if !r.ShardTripped("siteA") {
		t.Fatal("siteA breaker not tripped by 4 concurrent drifts against budget 2")
	}
	if r.ShardTripped("siteB") {
		t.Fatal("siteB breaker tripped by siteA's storm")
	}
	if !r.Tripped() {
		t.Error("Tripped() should report any open shard breaker")
	}
	if r.GlobalTripped() {
		t.Error("global breaker open without AggregateTripShards configured")
	}

	// Site B drifts while A is halted — and must converge.
	driftAndNotify(w, r, "psw1.siteB-c1")
	clk.Advance(time.Minute)
	wantState(t, r, "psw1.siteB-c1", StateConverged)
	if w.running["psw1.siteB-c1"] != w.golden["psw1.siteB-c1"] {
		t.Error("siteB device not restored while siteA halted")
	}
	// Nothing in A was touched.
	for _, d := range devsA {
		if w.running[d] == w.golden[d] {
			t.Errorf("%s was remediated while its shard breaker was open", d)
		}
	}

	// Reset drains A within its budget; the journal witnesses the
	// invariant per shard.
	r.ResetBreaker()
	clk.Advance(time.Minute)
	for _, d := range append(append([]string{}, devsA...), "psw1.siteB-c1") {
		wantState(t, r, d, StateConverged)
	}
	byShard := r.Journal().MaxActiveByShard()
	if byShard["siteA"] > 2 {
		t.Errorf("siteA max active = %d, budget 2", byShard["siteA"])
	}
	if byShard["siteB"] > 2 {
		t.Errorf("siteB max active = %d, budget 2", byShard["siteB"])
	}
	st := r.Stats()
	if st.ShardTrips["siteA"] != 1 || st.ShardTrips["siteB"] != 0 {
		t.Errorf("shard trips = %v, want siteA:1 only", st.ShardTrips)
	}
	if got := st.String(); !strings.Contains(got, "shard-trips{siteA:1}") {
		t.Errorf("Stats.String() missing per-shard trips: %s", got)
	}
}

// TestAggregateBreakerTripsGlobally: with AggregateTripShards=2, storms
// in two shards escalate to the fleet-wide halt, and a drift in a third,
// healthy shard is recorded but not fought.
func TestAggregateBreakerTripsGlobally(t *testing.T) {
	var all []string
	for _, site := range []string{"a", "b", "c"} {
		for i := 1; i <= 3; i++ {
			all = append(all, fmt.Sprintf("psw%d.%s-c1", i, site))
		}
	}
	w := newFakeWorld(all...)
	var alerts []string
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 1, BudgetMaxFraction: 1,
		AggregateTripShards: 2,
	})
	r.cfg.Alert = func(f string, a ...any) { alerts = append(alerts, fmt.Sprintf(f, a...)) }

	for i := 1; i <= 2; i++ {
		driftAndNotify(w, r, fmt.Sprintf("psw%d.a-c1", i))
	}
	if !r.ShardTripped("a") || r.GlobalTripped() {
		t.Fatal("want shard a tripped, global still closed")
	}
	for i := 1; i <= 2; i++ {
		driftAndNotify(w, r, fmt.Sprintf("psw%d.b-c1", i))
	}
	if !r.GlobalTripped() {
		t.Fatal("two open shards should trip the aggregate breaker")
	}
	// A healthy shard's drift now halts too — last-resort fleet-wide.
	driftAndNotify(w, r, "psw1.c-c1")
	clk.Advance(time.Minute)
	wantState(t, r, "psw1.c-c1", StateDetected)
	found := false
	for _, e := range r.Journal().Events() {
		if e.Type == EvAggregateTrip {
			found = true
		}
	}
	if !found {
		t.Error("no aggregate-trip event journaled")
	}
	if r.Stats().GlobalTrips != 1 {
		t.Errorf("GlobalTrips = %d, want 1", r.Stats().GlobalTrips)
	}

	// One reset clears everything and the whole backlog drains.
	r.ResetBreaker()
	clk.Advance(time.Minute)
	for _, d := range all[:4] {
		_ = d
	}
	for _, d := range []string{"psw1.a-c1", "psw2.a-c1", "psw1.b-c1", "psw2.b-c1", "psw1.c-c1"} {
		wantState(t, r, d, StateConverged)
	}
	if r.Tripped() || r.GlobalTripped() {
		t.Error("breakers still open after ResetBreaker")
	}
}

// TestGlobalDemandCap: shards each within their own budget still trip
// the global breaker when fleet-wide demand crosses the global cap.
func TestGlobalDemandCap(t *testing.T) {
	var all []string
	for _, site := range []string{"a", "b", "c", "d"} {
		all = append(all, "psw1."+site+"-c1")
	}
	w := newFakeWorld(all...)
	r, _ := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 2, BudgetMaxFraction: 1,
		GlobalBudgetMaxDevices: 3,
	})
	for i, d := range all {
		driftAndNotify(w, r, d)
		if i < 3 && r.GlobalTripped() {
			t.Fatalf("global breaker tripped after %d drifts, cap 3", i+1)
		}
	}
	if !r.GlobalTripped() {
		t.Fatal("global breaker closed with 4 open devices over cap 3")
	}
	// No single shard tripped: each has one open device against budget 2.
	for _, site := range []string{"a", "b", "c", "d"} {
		if r.ShardTripped(site) {
			t.Errorf("shard %s tripped; demand cap should trip globally only", site)
		}
	}
}

// TestResetShardBreakerDrainsOnlyThatShard: a targeted reset re-arms one
// failure domain and leaves the other halted.
func TestResetShardBreakerDrainsOnlyThatShard(t *testing.T) {
	var all []string
	for _, site := range []string{"a", "b"} {
		for i := 1; i <= 3; i++ {
			all = append(all, fmt.Sprintf("psw%d.%s-c1", i, site))
		}
	}
	w := newFakeWorld(all...)
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 1, BudgetMaxFraction: 1,
	})
	for _, d := range all {
		driftAndNotify(w, r, d)
	}
	if !r.ShardTripped("a") || !r.ShardTripped("b") {
		t.Fatal("both shards should be tripped")
	}
	if err := r.ResetShardBreaker("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.ResetShardBreaker("nosuch"); err == nil {
		t.Error("ResetShardBreaker on unknown shard should error")
	}
	clk.Advance(time.Minute)
	for i := 1; i <= 3; i++ {
		a, b := fmt.Sprintf("psw%d.a-c1", i), fmt.Sprintf("psw%d.b-c1", i)
		wantState(t, r, a, StateConverged)
		if got := r.States()[b]; got == StateConverged {
			t.Errorf("%s converged while shard b's breaker is open", b)
		}
		if w.running[b] == w.golden[b] {
			t.Errorf("%s was remediated while shard b's breaker is open", b)
		}
	}
	if r.ShardTripped("b") == false {
		t.Error("shard b breaker must stay open after resetting a")
	}
}

// TestPacedDrainSpacing: ResetBreaker releases the backlog DrainBatch
// devices per DrainEvery, visible as strictly spaced remediate events.
func TestPacedDrainSpacing(t *testing.T) {
	var all []string
	for i := 1; i <= 5; i++ {
		all = append(all, fmt.Sprintf("psw%d.a-c1", i))
	}
	w := newFakeWorld(all...)
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 1, BudgetMaxFraction: 1,
		DrainEvery: 10 * time.Second, DrainBatch: 1,
	})
	for _, d := range all {
		driftAndNotify(w, r, d)
	}
	if !r.ShardTripped("a") {
		t.Fatal("shard a should be tripped")
	}
	// Let psw1's pre-trip timer fire and park against the open breaker,
	// so the whole backlog rides one paced drain wave.
	clk.Advance(2 * time.Second)
	resetAt := clk.Now()
	r.ResetBreaker()
	clk.Advance(5 * time.Minute)
	for _, d := range all {
		wantState(t, r, d, StateConverged)
	}
	// The first backlog device was scheduled at backoff(0)=1s; each
	// subsequent one 10s later. psw1 remediated before the trip is not in
	// the backlog wave.
	var remediates []time.Duration
	for _, e := range r.Journal().Events() {
		if e.Type == EvRemediate && e.At.After(resetAt) {
			remediates = append(remediates, e.At.Sub(resetAt))
		}
	}
	if len(remediates) < 4 {
		t.Fatalf("want ≥4 post-reset remediations, got %d\n%s", len(remediates), r.Journal().Format())
	}
	for i := 1; i < len(remediates); i++ {
		if gap := remediates[i] - remediates[i-1]; gap < 10*time.Second {
			t.Errorf("drain gap %d→%d = %v, want ≥ DrainEvery (10s)\n%s",
				i-1, i, gap, r.Journal().Format())
		}
	}
	if max := r.Journal().MaxActiveByShard()["a"]; max > 1 {
		t.Errorf("shard a max active %d exceeded budget 1 during drain", max)
	}
}

// TestQuarantineDoesNotConsumeOtherShardBudget is the regression test
// demanded by the issue: a quarantined device in shard A must never
// count against shard B's budget.
func TestQuarantineDoesNotConsumeOtherShardBudget(t *testing.T) {
	w := newFakeWorld("psw1.a-c1", "psw1.b-c1", "psw2.b-c1")
	w.deployFail["psw1.a-c1"] = 10 // every attempt fails → quarantine
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1, MaxAttempts: 2,
		BudgetMaxDevices: 2, BudgetMaxFraction: 1,
	})
	driftAndNotify(w, r, "psw1.a-c1")
	clk.Advance(time.Minute)
	wantState(t, r, "psw1.a-c1", StateQuarantined)

	// Shard b has budget 2; both of its devices must schedule even
	// though a quarantined device exists elsewhere.
	driftAndNotify(w, r, "psw1.b-c1")
	driftAndNotify(w, r, "psw2.b-c1")
	if r.ShardTripped("b") || r.Tripped() {
		t.Fatalf("shard b tripped; quarantined psw1.a-c1 leaked into its budget\n%s", r.Journal().Format())
	}
	clk.Advance(time.Minute)
	wantState(t, r, "psw1.b-c1", StateConverged)
	wantState(t, r, "psw2.b-c1", StateConverged)
}

// TestConcurrentShardsUnderRace drives sweeps, deviations, and breaker
// resets from racing goroutines across shards — run under -race this is
// the cross-shard locking contract.
func TestConcurrentShardsUnderRace(t *testing.T) {
	var all []string
	for _, site := range []string{"a", "b", "c"} {
		for i := 1; i <= 4; i++ {
			all = append(all, fmt.Sprintf("psw%d.%s-c1", i, site))
		}
	}
	w := newFakeWorld(all...)
	clk := NewVirtualClock(t0)
	r := New(Deps{
		Golden:   w,
		Deployer: deployerFunc(w.deployClock(clk)),
		Checker:  w,
		SweepList: func() []string {
			return append([]string(nil), all...)
		},
	}, Config{
		Clock: clk, BackoffBase: time.Millisecond, DampingThreshold: -1,
		BudgetMaxDevices: 2, BudgetMaxFraction: 1,
	})
	defer r.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := all[(g*7+i)%len(all)]
				w.drift(d)
				r.HandleDeviation(monitor.Deviation{Device: d, Added: 1})
			}
		}(g)
	}
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Sweep()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.ResetBreaker()
			_ = r.ResetShardBreaker("a")
			_ = r.Tripped()
			_ = r.Snapshot()
			_ = r.Stats()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			clk.Advance(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	// Drain: reset any breakers and let everything converge.
	for i := 0; i < 20; i++ {
		r.ResetBreaker()
		clk.Advance(time.Second)
	}
	byShard := r.Journal().MaxActiveByShard()
	for sh, max := range byShard {
		if max > 2 {
			t.Errorf("shard %s max active %d exceeded budget 2", sh, max)
		}
	}
}

// TestSnapshotReportsShards pins the programmatic snapshot the HTTP/CLI
// surfaces are parity-checked against.
func TestSnapshotReportsShards(t *testing.T) {
	w := newFakeWorld("psw1.a-c1", "psw2.a-c1", "psw3.a-c1", "psw1.b-c1")
	r, _ := newTestRec(w, Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 1, BudgetMaxFraction: 1,
	})
	driftAndNotify(w, r, "psw1.a-c1")
	driftAndNotify(w, r, "psw2.a-c1") // trips shard a
	driftAndNotify(w, r, "psw1.b-c1")
	s := r.Snapshot()
	if !s.Tripped || s.GlobalTripped {
		t.Errorf("snapshot breaker = %+v, want shard-level trip only", s)
	}
	if len(s.Shards) != 2 || s.Shards[0].Shard != "a" || s.Shards[1].Shard != "b" {
		t.Fatalf("snapshot shards = %+v, want sorted [a b]", s.Shards)
	}
	a, b := s.Shards[0], s.Shards[1]
	if !a.Tripped || a.Trips != 1 || a.Open != 2 || a.Budget != 1 {
		t.Errorf("shard a = %+v, want tripped with 2 open against budget 1", a)
	}
	if b.Tripped || b.Open != 1 || b.Backlog != 1 {
		t.Errorf("shard b = %+v, want 1 open (backlog) and closed breaker", b)
	}
	tbl := FormatSnapshot(s)
	for _, want := range []string{"SHARD", "OPEN (shard)", "a", "b"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("FormatSnapshot missing %q:\n%s", want, tbl)
		}
	}
}
