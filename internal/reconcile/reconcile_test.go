package reconcile

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/revctl"
)

// fakeWorld implements GoldenSource, ConfigDeployer, and Checker over two
// maps, with scriptable failures, so state-machine behaviour is tested
// without the full stack (e2e_test.go covers that).
type fakeWorld struct {
	mu         sync.Mutex
	golden     map[string]string
	running    map[string]string
	genFail    map[string]int // fail next N generates per device
	deployFail map[string]int // fail next N deploys per device
	checkFail  map[string]int // fail next N checks per device
	deploys    []deployRec
	commits    int
}

type deployRec struct {
	device string
	at     time.Time
}

func newFakeWorld(devices ...string) *fakeWorld {
	w := &fakeWorld{
		golden: map[string]string{}, running: map[string]string{},
		genFail: map[string]int{}, deployFail: map[string]int{}, checkFail: map[string]int{},
	}
	for _, d := range devices {
		w.golden[d] = "hostname " + d + "\n"
		w.running[d] = w.golden[d]
	}
	return w
}

func (w *fakeWorld) GenerateDevice(name string) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.genFail[name] > 0 {
		w.genFail[name]--
		return "", fmt.Errorf("fake generate failure on %s", name)
	}
	cfg, ok := w.golden[name]
	if !ok {
		return "", fmt.Errorf("unknown device %s", name)
	}
	return cfg, nil
}

func (w *fakeWorld) CommitGolden(device, config, author, message string) (revctl.Revision, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.commits++
	return revctl.Revision{}, nil
}

func (w *fakeWorld) deployClock(clk Clock) func(map[string]string, deploy.Options) (deploy.Report, error) {
	return func(configs map[string]string, opts deploy.Options) (deploy.Report, error) {
		var rep deploy.Report
		w.mu.Lock()
		defer w.mu.Unlock()
		for name, cfg := range configs {
			if w.deployFail[name] > 0 {
				w.deployFail[name]--
				return rep, fmt.Errorf("fake deploy failure on %s", name)
			}
			w.running[name] = cfg
			w.deploys = append(w.deploys, deployRec{device: name, at: clk.Now()})
		}
		return rep, nil
	}
}

func (w *fakeWorld) CheckDevice(device string) (*monitor.Deviation, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.checkFail[device] > 0 {
		w.checkFail[device]--
		return nil, fmt.Errorf("fake check failure on %s", device)
	}
	if w.running[device] != w.golden[device] {
		return &monitor.Deviation{Device: device, Added: 1}, nil
	}
	return nil, nil
}

func (w *fakeWorld) deployCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.deploys)
}

func (w *fakeWorld) drift(device string) {
	w.mu.Lock()
	w.running[device] = w.golden[device] + "rogue line\n"
	w.mu.Unlock()
}

// deployerFunc adapts a func to ConfigDeployer.
type deployerFunc func(map[string]string, deploy.Options) (deploy.Report, error)

func (f deployerFunc) Deploy(c map[string]string, o deploy.Options) (deploy.Report, error) {
	return f(c, o)
}

var t0 = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// newTestRec wires a reconciler over a fakeWorld and a virtual clock.
func newTestRec(w *fakeWorld, cfg Config) (*Reconciler, *VirtualClock) {
	clk := NewVirtualClock(t0)
	cfg.Clock = clk
	r := New(Deps{
		Golden:   w,
		Deployer: deployerFunc(w.deployClock(clk)),
		Checker:  w,
	}, cfg)
	return r, clk
}

func driftAndNotify(w *fakeWorld, r *Reconciler, device string) {
	w.drift(device)
	r.HandleDeviation(monitor.Deviation{Device: device, Added: 1})
}

func wantState(t *testing.T, r *Reconciler, device string, want State) {
	t.Helper()
	if got := r.States()[device]; got != want {
		t.Fatalf("%s state = %q, want %q\njournal:\n%s", device, got, want, r.Journal().Format())
	}
}

func TestHappyPathConvergence(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk := newTestRec(w, Config{BackoffBase: time.Second})
	driftAndNotify(w, r, "d1")
	wantState(t, r, "d1", StateBackoff)

	clk.Advance(time.Second)
	wantState(t, r, "d1", StateConverged)
	if w.running["d1"] != w.golden["d1"] {
		t.Error("running config not restored to golden")
	}
	// The journal records the full state-machine walk in order.
	var seq []EventType
	for _, e := range r.Journal().Events() {
		seq = append(seq, e.Type)
	}
	want := []EventType{EvDetected, EvScheduled, EvRemediate, EvConfirming, EvConverged}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Errorf("journal sequence = %v, want %v", seq, want)
	}
	s := r.Stats()
	if s.Detected != 1 || s.Remediated != 1 || s.Converged != 1 || s.Retries != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestBackoffScheduleIsDeterministic pins the jitter-free exponential
// schedule: attempts at t0+1s, +3s, +7s (delays 1s, 2s, 4s).
func TestBackoffScheduleIsDeterministic(t *testing.T) {
	w := newFakeWorld("d1")
	w.deployFail["d1"] = 2
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, BackoffMax: time.Minute, DampingThreshold: -1})
	driftAndNotify(w, r, "d1")
	clk.Advance(10 * time.Second)
	wantState(t, r, "d1", StateConverged)

	var att []time.Duration
	for _, e := range r.Journal().Events() {
		if e.Type == EvRemediate {
			att = append(att, e.At.Sub(t0))
		}
	}
	want := []time.Duration{time.Second, 3 * time.Second, 7 * time.Second}
	if fmt.Sprint(att) != fmt.Sprint(want) {
		t.Errorf("remediation attempts at %v, want %v", att, want)
	}
	if s := r.Stats(); s.Retries != 2 {
		t.Errorf("retries = %d, want 2", s.Retries)
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	cfg := Config{BackoffBase: time.Second, BackoffMax: 5 * time.Second}.withDefaults()
	if d := cfg.backoff(10); d != 5*time.Second {
		t.Errorf("backoff(10) = %v, want cap 5s", d)
	}
	if d := cfg.backoff(0); d != time.Second {
		t.Errorf("backoff(0) = %v, want 1s", d)
	}
}

func TestQuarantineAfterMaxAttempts(t *testing.T) {
	w := newFakeWorld("d1")
	w.deployFail["d1"] = 100
	var alerts []string
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, MaxAttempts: 3, DampingThreshold: -1,
		Alert: func(f string, a ...any) { alerts = append(alerts, fmt.Sprintf(f, a...)) },
	})
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Minute)
	wantState(t, r, "d1", StateQuarantined)
	if n := w.deployCount(); n != 0 {
		t.Errorf("deploys succeeded = %d, want 0", n)
	}
	if len(alerts) == 0 || !strings.Contains(alerts[0], "quarantined") {
		t.Errorf("no quarantine alert raised: %v", alerts)
	}
	// Further drift on a quarantined device is suppressed, never deployed.
	before := r.Journal().Len()
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Minute)
	evs := r.Journal().Events()[before:]
	if len(evs) != 1 || evs[0].Type != EvSuppressed {
		t.Errorf("post-quarantine events = %v, want one suppressed", evs)
	}
	if s := r.Stats(); s.Quarantined != 1 || s.Suppressed != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFlapDampingQuarantine: the third drift inside the damping window
// parks the device instead of fighting whoever keeps changing it.
func TestFlapDampingQuarantine(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingWindow: time.Hour, DampingThreshold: 3,
	})
	for i := 0; i < 2; i++ {
		driftAndNotify(w, r, "d1")
		clk.Advance(time.Second)
		wantState(t, r, "d1", StateConverged)
	}
	driftAndNotify(w, r, "d1")
	wantState(t, r, "d1", StateQuarantined)
	clk.Advance(time.Minute)
	if n := w.deployCount(); n != 2 {
		t.Errorf("deploys = %d, want 2 (third drift must not deploy)", n)
	}
	if w.running["d1"] == w.golden["d1"] {
		t.Error("quarantined device was remediated")
	}
}

// TestDampingWindowExpires: slow drift (outside the window) never
// quarantines.
func TestDampingWindowExpires(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DampingWindow: 10 * time.Second, DampingThreshold: 3,
	})
	for i := 0; i < 5; i++ {
		driftAndNotify(w, r, "d1")
		clk.Advance(time.Second)
		wantState(t, r, "d1", StateConverged)
		clk.Advance(30 * time.Second) // let the window drain
	}
	if s := r.Stats(); s.Quarantined != 0 || s.Converged != 5 {
		t.Errorf("stats = %+v", s)
	}
}

// TestBudgetTripOnMassDrift: demand beyond min(K, X·fleet) opens the
// breaker — nothing deploys until the operator resets.
func TestBudgetTripOnMassDrift(t *testing.T) {
	w := newFakeWorld("d1", "d2", "d3", "d4")
	var alerts []string
	clkHolder := Config{
		BackoffBase: time.Second, BudgetMaxDevices: 2, BudgetMaxFraction: 1.0,
		DampingThreshold: -1,
		Alert:            func(f string, a ...any) { alerts = append(alerts, fmt.Sprintf(f, a...)) },
	}
	r, clk := newTestRec(w, clkHolder)
	for _, d := range []string{"d1", "d2", "d3", "d4"} {
		driftAndNotify(w, r, d)
	}
	if !r.Tripped() {
		t.Fatal("breaker did not trip on mass drift")
	}
	clk.Advance(time.Minute)
	if n := w.deployCount(); n != 0 {
		t.Errorf("deploys while tripped = %d, want 0", n)
	}
	if s := r.Stats(); s.BudgetTrips != 1 {
		t.Errorf("budget trips = %d, want 1", s.BudgetTrips)
	}
	if len(alerts) == 0 || !strings.Contains(alerts[0], "budget") {
		t.Errorf("no budget alert: %v", alerts)
	}
	// Operator inspected, re-arms: backlog drains within the budget.
	r.ResetBreaker()
	clk.Advance(time.Minute)
	for _, d := range []string{"d1", "d2", "d3", "d4"} {
		wantState(t, r, d, StateConverged)
	}
	if max := r.Journal().MaxActive(); max > 2 {
		t.Errorf("max concurrent remediations = %d, budget 2", max)
	}
}

// TestBudgetFractionOfFleet: the fractional term tightens the budget.
func TestBudgetFractionOfFleet(t *testing.T) {
	w := newFakeWorld("d1", "d2")
	clk := NewVirtualClock(t0)
	r := New(Deps{
		Golden:   w,
		Deployer: deployerFunc(w.deployClock(clk)),
		Checker:  w,
		// Fleet of 4 at 25% → budget min(10, 1) = 1.
		FleetSize: func() int { return 4 },
	}, Config{Clock: clk, BackoffBase: time.Second, BudgetMaxDevices: 10, BudgetMaxFraction: 0.25, DampingThreshold: -1})
	driftAndNotify(w, r, "d1")
	if r.Tripped() {
		t.Fatal("single drift must not trip a budget of 1")
	}
	driftAndNotify(w, r, "d2")
	if !r.Tripped() {
		t.Fatal("second concurrent drift must trip a budget of 1")
	}
}

// TestDeployRateLimit: the token bucket spaces remediation deploys.
func TestDeployRateLimit(t *testing.T) {
	w := newFakeWorld("d1", "d2", "d3")
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, DeployEvery: 10 * time.Second, DeployBurst: 1,
		DampingThreshold: -1,
	})
	for _, d := range []string{"d1", "d2", "d3"} {
		driftAndNotify(w, r, d)
	}
	clk.Advance(time.Minute)
	for _, d := range []string{"d1", "d2", "d3"} {
		wantState(t, r, d, StateConverged)
	}
	w.mu.Lock()
	times := append([]deployRec(nil), w.deploys...)
	w.mu.Unlock()
	if len(times) != 3 {
		t.Fatalf("deploys = %d, want 3", len(times))
	}
	// Bucket epoch t0, 1 token / 10s: deploys land at exactly 1s (initial
	// token), 10s (first refill), 20s (second refill).
	want := []time.Duration{time.Second, 10 * time.Second, 20 * time.Second}
	for i, rec := range times {
		if got := rec.at.Sub(t0); got != want[i] {
			t.Errorf("deploy %d at %v, want %v", i, got, want[i])
		}
	}
	if s := r.Stats(); s.RateLimited == 0 {
		t.Error("no rate-limited events recorded")
	}
}

// TestCheckErrorRetryQueue: errored conformance checks are retried with
// backoff instead of being dropped, and a drift found on retry enters
// the loop.
func TestCheckErrorRetryQueue(t *testing.T) {
	w := newFakeWorld("d1")
	w.drift("d1")
	w.checkFail["d1"] = 2
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, MaxCheckRetries: 5, DampingThreshold: -1})
	// The monitor's OnCheckError hook fires (the device was unreachable
	// when the CONFIG_CHANGED alert triggered the check).
	r.HandleCheckError("d1", fmt.Errorf("unreachable"))
	clk.Advance(time.Minute)
	wantState(t, r, "d1", StateConverged)
	if s := r.Stats(); s.CheckErrors != 3 { // 1 reported + 2 retry failures
		t.Errorf("check errors = %d, want 3", s.CheckErrors)
	}
	if w.running["d1"] != w.golden["d1"] {
		t.Error("drift found by retried check was not remediated")
	}
}

func TestCheckErrorRetriesBounded(t *testing.T) {
	w := newFakeWorld("d1")
	w.checkFail["d1"] = 1000
	var alerts []string
	r, clk := newTestRec(w, Config{
		BackoffBase: time.Second, MaxCheckRetries: 3, DampingThreshold: -1,
		Alert: func(f string, a ...any) { alerts = append(alerts, fmt.Sprintf(f, a...)) },
	})
	r.HandleCheckError("d1", fmt.Errorf("unreachable"))
	clk.Advance(time.Hour)
	if s := r.Stats(); s.CheckErrors != 4 { // initial + MaxCheckRetries
		t.Errorf("check errors = %d, want 4", s.CheckErrors)
	}
	if len(alerts) != 1 {
		t.Errorf("alerts = %v, want one giving-up alert", alerts)
	}
}

func TestSweepFindsSilentDrift(t *testing.T) {
	w := newFakeWorld("d1", "d2")
	clk := NewVirtualClock(t0)
	r := New(Deps{
		Golden:    w,
		Deployer:  deployerFunc(w.deployClock(clk)),
		Checker:   w,
		SweepList: func() []string { return []string{"d1", "d2"} },
	}, Config{Clock: clk, BackoffBase: time.Second, SweepInterval: time.Minute, DampingThreshold: -1})
	r.Start()
	w.drift("d2") // no deviation event: the syslog never arrived
	clk.Advance(time.Minute + time.Second)
	wantState(t, r, "d2", StateConverged)
	if r.States()["d1"] != StateConverged && r.States()["d1"] != "" {
		t.Errorf("d1 state = %v", r.States()["d1"])
	}
	// The sweep re-arms itself.
	w.drift("d1")
	clk.Advance(2 * time.Minute)
	wantState(t, r, "d1", StateConverged)
	r.Stop()
}

func TestReleaseFromQuarantine(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, DampingWindow: time.Hour, DampingThreshold: 2})
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Second)
	wantState(t, r, "d1", StateConverged)
	driftAndNotify(w, r, "d1") // second drift inside the window: quarantined
	wantState(t, r, "d1", StateQuarantined)
	if err := r.Release("d2"); err == nil {
		t.Error("releasing an unknown device must error")
	}
	if err := r.Release("d1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	wantState(t, r, "d1", StateConverged)
	if w.running["d1"] != w.golden["d1"] {
		t.Error("released device was not remediated")
	}
}

func TestStopCancelsPendingWork(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk := newTestRec(w, Config{BackoffBase: time.Second})
	driftAndNotify(w, r, "d1")
	r.Stop()
	clk.Advance(time.Minute)
	if n := w.deployCount(); n != 0 {
		t.Errorf("deploys after Stop = %d", n)
	}
	// New deviations are ignored after Stop.
	driftAndNotify(w, r, "d1")
	if s := r.Stats(); s.Detected != 1 {
		t.Errorf("detected = %d, want 1 (pre-Stop only)", s.Detected)
	}
}

func TestJournalSinkReceivesLines(t *testing.T) {
	var buf bytes.Buffer
	w := newFakeWorld("d1")
	clk := NewVirtualClock(t0)
	r := New(Deps{Golden: w, Deployer: deployerFunc(w.deployClock(clk)), Checker: w},
		Config{Clock: clk, BackoffBase: time.Second, JournalSink: &buf})
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Second)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != r.Journal().Len() {
		t.Errorf("sink lines = %d, journal entries = %d", len(lines), r.Journal().Len())
	}
	if !strings.Contains(buf.String(), "converged") {
		t.Errorf("sink missing converged entry:\n%s", buf.String())
	}
}

func TestDeviceTableRendersStates(t *testing.T) {
	w := newFakeWorld("d1", "d2")
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, DampingThreshold: -1})
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Second)
	tbl := r.DeviceTable()
	if !strings.Contains(tbl, "d1") || !strings.Contains(tbl, string(StateConverged)) {
		t.Errorf("device table missing content:\n%s", tbl)
	}
}

func TestGenerateFailureRetries(t *testing.T) {
	w := newFakeWorld("d1")
	w.genFail["d1"] = 1
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, DampingThreshold: -1})
	driftAndNotify(w, r, "d1")
	clk.Advance(10 * time.Second)
	wantState(t, r, "d1", StateConverged)
	if s := r.Stats(); s.Retries != 1 {
		t.Errorf("retries = %d, want 1", s.Retries)
	}
}

func TestTokenBucketDeterminism(t *testing.T) {
	b := newTokenBucket(2, 10*time.Second, t0)
	if w := b.take(t0); w != 0 {
		t.Errorf("first take wait = %v", w)
	}
	if w := b.take(t0); w != 0 {
		t.Errorf("second take wait = %v", w)
	}
	if w := b.take(t0); w != 10*time.Second {
		t.Errorf("empty-bucket wait = %v, want 10s", w)
	}
	if w := b.take(t0.Add(10 * time.Second)); w != 0 {
		t.Errorf("post-refill take wait = %v", w)
	}
	// Tokens cap at capacity after a long idle.
	b2 := newTokenBucket(2, time.Second, t0)
	b2.take(t0)
	b2.refill(t0.Add(time.Hour))
	if b2.tokens != 2 {
		t.Errorf("tokens = %d, want capped at 2", b2.tokens)
	}
}

func TestVirtualClockOrdersTimers(t *testing.T) {
	clk := NewVirtualClock(t0)
	var order []string
	clk.AfterFunc(2*time.Second, func() { order = append(order, "b") })
	clk.AfterFunc(time.Second, func() { order = append(order, "a") })
	clk.AfterFunc(2*time.Second, func() { order = append(order, "c") })
	tm := clk.AfterFunc(3*time.Second, func() { order = append(order, "dropped") })
	tm.Stop()
	// A callback scheduling another due timer fires in the same Advance;
	// it lands after b and c (same due time, later sequence number).
	clk.AfterFunc(time.Second, func() {
		clk.AfterFunc(time.Second, func() { order = append(order, "nested") })
	})
	clk.Advance(5 * time.Second)
	want := "a b c nested"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("fire order = %q, want %q", got, want)
	}
	if clk.Now() != t0.Add(5*time.Second) {
		t.Errorf("now = %v", clk.Now())
	}
	if clk.PendingTimers() != 0 {
		t.Errorf("pending timers = %d", clk.PendingTimers())
	}
}
