package reconcile

import (
	"testing"
	"time"
)

// resumeWorld builds the scripted multi-shard world the kill-and-resume
// tests replay: two shards (a, b), a deploy failure, a rate-limited
// backlog, a silent drift caught by the sweep, and a check error.
func resumeWorld() (*fakeWorld, Config, []string) {
	devs := []string{"psw1.a-c1", "psw2.a-c1", "psw3.b-c1", "psw4.b-c1"}
	w := newFakeWorld(devs...)
	w.deployFail["psw2.a-c1"] = 1
	cfg := Config{
		BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 10, BudgetMaxFraction: 1,
		DeployEvery: 5 * time.Second, DeployBurst: 1,
		SweepInterval: time.Minute,
	}
	return w, cfg, devs
}

func newResumeRec(w *fakeWorld, cfg Config, devs []string) (*Reconciler, *VirtualClock) {
	clk := NewVirtualClock(t0)
	cfg.Clock = clk
	r := New(Deps{
		Golden:    w,
		Deployer:  deployerFunc(w.deployClock(clk)),
		Checker:   w,
		SweepList: func() []string { return append([]string(nil), devs...) },
	}, cfg)
	r.Start()
	return r, clk
}

// driveToKillPoint applies the scripted stimuli up to the quiescent kill
// point at t0+74s: three notified drifts at t0, a silent drift and a
// scripted check error at t0+30s (both surfaced by the t0+60s sweep),
// and a fresh drift at t0+74s whose backoff timer is still pending.
func driveToKillPoint(w *fakeWorld, r *Reconciler, clk *VirtualClock) {
	driftAndNotify(w, r, "psw1.a-c1")
	driftAndNotify(w, r, "psw2.a-c1")
	driftAndNotify(w, r, "psw3.b-c1")
	clk.Advance(30 * time.Second)
	w.drift("psw4.b-c1") // silent: only the sweep can find it
	w.mu.Lock()
	w.checkFail["psw3.b-c1"] = 1 // the sweep's check errors once
	w.mu.Unlock()
	clk.Advance(44 * time.Second) // t0+74s; sweep ran at t0+60s
	driftAndNotify(w, r, "psw1.a-c1")
}

// TestKillAndResumeJournalByteIdentical is the recovery acceptance test:
// a reconciler killed at a quiescent point and rebuilt with
// ResumeFromJournal produces, from then on, the exact journal the
// uninterrupted run produces — byte for byte, including sequence
// numbers, timer due times, rate-limit decisions, and sweep cadence.
func TestKillAndResumeJournalByteIdentical(t *testing.T) {
	// Run A: uninterrupted.
	wA, cfgA, devsA := resumeWorld()
	rA, clkA := newResumeRec(wA, cfgA, devsA)
	defer rA.Stop()
	driveToKillPoint(wA, rA, clkA)
	clkA.Advance(46 * time.Second) // t0+120s: second sweep fires at the end

	// Run B: identical stimuli, killed at t0+74s, resumed from the
	// journal, then the clock simply keeps going.
	wB, cfgB, devsB := resumeWorld()
	rB, clkB := newResumeRec(wB, cfgB, devsB)
	driveToKillPoint(wB, rB, clkB)
	events := rB.Journal().Events()
	rB.Stop() // the crash

	cfgB.Clock = clkB
	rB2 := ResumeFromJournal(Deps{
		Golden:    wB,
		Deployer:  deployerFunc(wB.deployClock(clkB)),
		Checker:   wB,
		SweepList: func() []string { return append([]string(nil), devsB...) },
	}, cfgB, events)
	defer rB2.Stop()
	clkB.Advance(46 * time.Second)

	a, b := rA.Journal().Format(), rB2.Journal().Format()
	if a != b {
		t.Fatalf("resumed journal diverges from uninterrupted run\n--- uninterrupted ---\n%s--- resumed ---\n%s", a, b)
	}
	// The states and headline counters agree too.
	sa, sb := rA.States(), rB2.States()
	for d, st := range sa {
		if sb[d] != st {
			t.Errorf("state[%s]: uninterrupted %q vs resumed %q", d, st, sb[d])
		}
	}
	ja, jb := rA.Stats(), rB2.Stats()
	if ja.String() != jb.String() {
		t.Errorf("stats diverge:\nuninterrupted: %s\nresumed:       %s", ja.String(), jb.String())
	}
	for d := range wA.golden {
		if wA.running[d] != wA.golden[d] || wB.running[d] != wB.golden[d] {
			t.Errorf("%s not converged in one of the runs", d)
		}
	}
}

// TestResumeRestoresBreakerQuarantineAndDamping: breaker positions,
// quarantines, and flap-damping history survive the restart.
func TestResumeRestoresBreakerQuarantineAndDamping(t *testing.T) {
	devs := []string{"psw1.a-c1", "psw2.a-c1", "psw1.b-c1"}
	w := newFakeWorld(devs...)
	cfg := Config{
		BackoffBase: time.Second,
		DampingWindow: 15 * time.Minute, DampingThreshold: 3,
		BudgetMaxDevices: 1, BudgetMaxFraction: 1,
	}
	clk := NewVirtualClock(t0)
	cfg.Clock = clk
	deps := Deps{Golden: w, Deployer: deployerFunc(w.deployClock(clk)), Checker: w}
	r := New(deps, cfg)

	// Flap psw1.b into quarantine: three detections inside the window.
	for i := 0; i < 3; i++ {
		driftAndNotify(w, r, "psw1.b-c1")
		clk.Advance(2 * time.Second)
	}
	wantState(t, r, "psw1.b-c1", StateQuarantined)
	// Storm shard a against budget 1.
	driftAndNotify(w, r, "psw1.a-c1")
	driftAndNotify(w, r, "psw2.a-c1")
	if !r.ShardTripped("a") {
		t.Fatal("shard a should be tripped")
	}
	clk.Advance(10 * time.Second) // park the pending timer against the breaker
	events := r.Journal().Events()
	r.Stop()

	r2 := ResumeFromJournal(deps, cfg, events)
	defer r2.Stop()
	if !r2.ShardTripped("a") {
		t.Error("shard a breaker position lost across restart")
	}
	wantState(t, r2, "psw1.b-c1", StateQuarantined)
	// Drift on the quarantined device is still suppressed — the
	// quarantine (and its damping history) survived.
	preLen := r2.Journal().Len()
	driftAndNotify(w, r2, "psw1.b-c1")
	evs := r2.Journal().Events()
	if len(evs) != preLen+1 || evs[len(evs)-1].Type != EvSuppressed {
		t.Errorf("drift on resumed quarantined device not suppressed:\n%s", r2.Journal().Format())
	}
	if r2.Stats().Suppressed < 1 {
		t.Error("suppressed counter not restored/advanced")
	}
	// The parked storm drains after reset, within budget.
	r2.ResetBreaker()
	clk.Advance(time.Minute)
	wantState(t, r2, "psw1.a-c1", StateConverged)
	wantState(t, r2, "psw2.a-c1", StateConverged)
	if max := r2.Journal().MaxActiveByShard()["a"]; max > 1 {
		t.Errorf("shard a max active %d exceeded budget 1 after resume", max)
	}
	if r2.Stats().BudgetTrips != 1 {
		t.Errorf("BudgetTrips = %d after resume, want the original 1", r2.Stats().BudgetTrips)
	}
}

// TestResumeInterruptedInFlight: a journal that ends mid-remediation
// (the process died holding a budget slot) resumes by releasing the slot
// and redoing the attempt — remediation is idempotent.
func TestResumeInterruptedInFlight(t *testing.T) {
	w := newFakeWorld("psw1.a-c1")
	w.drift("psw1.a-c1")
	clk := NewVirtualClock(t0.Add(time.Second))
	cfg := Config{BackoffBase: time.Second, DampingThreshold: -1, Clock: clk}
	deps := Deps{Golden: w, Deployer: deployerFunc(w.deployClock(clk)), Checker: w}
	events := []Event{
		{Seq: 1, At: t0, Device: "psw1.a-c1", Shard: "a", Type: EvDetected, Detail: "drift +1/-0 lines"},
		{Seq: 2, At: t0, Device: "psw1.a-c1", Shard: "a", Type: EvScheduled,
			Detail: "remediation in 1s (attempt 1)", FireAt: t0.Add(time.Second)},
		{Seq: 3, At: t0.Add(time.Second), Device: "psw1.a-c1", Shard: "a", Type: EvRemediate,
			Detail: "attempt 1", Active: 1, ShardActive: 1},
	}
	r := ResumeFromJournal(deps, cfg, events)
	defer r.Stop()
	evs := r.Journal().Events()
	if evs[len(evs)-2].Type != EvResumed || evs[len(evs)-1].Type != EvScheduled {
		t.Fatalf("want resumed+scheduled appended after interrupted remediate:\n%s", r.Journal().Format())
	}
	clk.Advance(time.Second)
	wantState(t, r, "psw1.a-c1", StateConverged)
	if w.running["psw1.a-c1"] != w.golden["psw1.a-c1"] {
		t.Error("interrupted remediation not redone after resume")
	}
	if max := r.Journal().MaxActive(); max > 1 {
		t.Errorf("max active %d after resume, want ≤1 (slot released before redo)", max)
	}
}
