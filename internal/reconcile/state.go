package reconcile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/deploy"
)

// State is a device's position in the reconciliation state machine:
//
//	detected → backoff → remediating → confirming → converged
//	                                             ↘ quarantined
//
// detected:    drift observed; not yet scheduled (only while the breaker
//
//	is open — normally a device moves to backoff immediately).
//
// backoff:     remediation queued behind the deterministic backoff delay
//
//	(or a deploy-rate token).
//
// remediating: golden regenerated and deploying with commit-confirm.
// confirming:  provisionally committed; health check decides confirm vs
//
//	rollback.
//
// converged:   running config matches golden again; the device stays
//
//	tracked so flap damping spans episodes.
//
// quarantined: flap damping or repeated failure parked the device for
//
//	operator review; further drift is suppressed until
//	Release.
type State string

const (
	StateDetected    State = "detected"
	StateBackoff     State = "backoff"
	StateRemediating State = "remediating"
	StateConfirming  State = "confirming"
	StateConverged   State = "converged"
	StateQuarantined State = "quarantined"
)

// deviceState is the reconciler's per-device record. All fields are
// guarded by Reconciler.mu.
type deviceState struct {
	name             string
	shard            *shard      // the device's failure domain (never nil once tracked)
	state            State
	attempt          int         // failed remediation attempts this episode
	checkAttempt     int         // consecutive conformance-check errors
	transportAttempt int         // consecutive transport-layer remediation failures
	detections       []time.Time // drift detections inside the damping window
	timer            Timer       // pending backoff timer, nil when none
	timerArmed       bool
	lastDetail       string
	changedAt        time.Time

	// Replay scratch: the due time and journal position of the pending
	// backoff/recheck timer, reconstructed by ResumeFromJournal and used
	// only while re-arming. Zero outside recovery.
	pendingFire     time.Time
	pendingFireSeq  int64
	pendingRecheck  time.Time
	pendingRecheckSeq int64
}

// DeviceStatus is the exported view of one tracked device.
type DeviceStatus struct {
	Device     string
	Shard      string    // failure domain
	State      State
	Attempts   int       // failed remediation attempts this episode
	Detections int       // drift detections inside the damping window
	ChangedAt  time.Time // last state transition
	Detail     string    // last journal detail for the device
}

// Config tunes the reconciler. The zero value selects the defaults below.
type Config struct {
	// Clock drives all scheduling; nil uses the wall clock. Tests pass a
	// VirtualClock for deterministic runs.
	Clock Clock

	// SweepInterval is the period of the full-fleet conformance sweep
	// that catches drift whose syslog never arrived. 0 disables it.
	SweepInterval time.Duration

	// BackoffBase is the delay before the first remediation attempt; the
	// delay doubles on every failed attempt (jitter-free, so schedules
	// are reproducible). Default 1s.
	BackoffBase time.Duration
	// BackoffMax caps the exponential delay. Default 60s.
	BackoffMax time.Duration
	// MaxAttempts quarantines a device after this many failed
	// remediation attempts in one episode. Default 5. Negative disables.
	MaxAttempts int

	// DampingWindow and DampingThreshold implement flap damping: a
	// device detected drifting DampingThreshold times inside the window
	// is quarantined instead of remediated — someone (or something) is
	// fighting the reconciler. Defaults: 15m, 3. DampingThreshold < 0
	// disables damping.
	DampingWindow    time.Duration
	DampingThreshold int

	// BudgetMaxDevices (K) and BudgetMaxFraction (X) form the per-shard
	// safety budget min(K, X·shard_fleet): within one failure domain the
	// reconciler never has more than that many devices in flight, and
	// when *demand* exceeds the budget — more unconverged devices in the
	// shard than it may touch — that shard's circuit breaker opens and
	// the shard halts with an alert instead of deploying. Mass drift
	// usually means the desired state is wrong; remediating it at scale
	// would push the error everywhere. Other shards keep converging.
	// Defaults: 4, 0.25. Without a ShardFleetSize dependency the
	// fraction uses the fleet-wide size.
	BudgetMaxDevices  int
	BudgetMaxFraction float64

	// AggregateTripShards escalates to the global last-resort breaker
	// when at least this many shard breakers are open at once — a storm
	// that crosses failure domains is a fleet-wide problem. 0 (default)
	// disables the aggregate breaker.
	AggregateTripShards int

	// GlobalBudgetMaxDevices and GlobalBudgetMaxFraction bound fleet-wide
	// *demand*: when the total number of open devices across all shards
	// exceeds min of the two, the global breaker opens even if no single
	// shard exceeded its own budget. 0 (default) disables each bound.
	GlobalBudgetMaxDevices  int
	GlobalBudgetMaxFraction float64

	// DrainEvery and DrainBatch pace the backlog release when a breaker
	// is reset: DrainBatch devices per shard are scheduled per DrainEvery
	// interval instead of re-arming the whole backlog at once (thundering
	// herd). Defaults: 1s, 1. DrainEvery < 0 disables pacing.
	DrainEvery time.Duration
	DrainBatch int

	// DeployEvery rate-limits remediation deploys: one token per
	// interval, bucket capacity DeployBurst (default 1). 0 disables.
	DeployEvery time.Duration
	DeployBurst int

	// ConfirmGrace is the commit-confirm window handed to the deployer;
	// a remediation that fails its health check rolls back inside it.
	// Default 30s.
	ConfirmGrace time.Duration

	// MaxCheckRetries bounds the retry queue for conformance checks that
	// error (unreachable device). Default 3. Negative disables retries.
	// The same bound applies to transport-layer remediation failures
	// (management session flapped mid-deploy): those ride this retry
	// queue, never the drift→quarantine path, because the device didn't
	// reject the config — we just couldn't talk to it.
	MaxCheckRetries int

	// DeployRetry, when set, is handed to the deployment engine for
	// remediation pushes so transient transport faults are absorbed by
	// per-device backoff inside the deploy instead of failing the whole
	// remediation attempt. Nil keeps single-shot commits.
	DeployRetry *deploy.RetryPolicy

	// Author is recorded on golden commits. Default "reconciler".
	Author string

	// Alert receives operator-facing notifications (quarantines, budget
	// trips). Nil silences them.
	Alert func(format string, args ...any)

	// JournalSink receives each journal entry as one line when set
	// (point it at a file for a durable journal).
	JournalSink io.Writer
}

// defaults for Config zero values.
const (
	DefaultBackoffBase      = time.Second
	DefaultBackoffMax       = 60 * time.Second
	DefaultMaxAttempts      = 5
	DefaultDampingWindow    = 15 * time.Minute
	DefaultDampingThreshold = 3
	DefaultBudgetDevices    = 4
	DefaultBudgetFraction   = 0.25
	DefaultConfirmGrace     = 30 * time.Second
	DefaultMaxCheckRetries  = 3
	DefaultDrainEvery       = time.Second
	DefaultDrainBatch       = 1
)

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = RealClock()
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.DampingWindow <= 0 {
		c.DampingWindow = DefaultDampingWindow
	}
	if c.DampingThreshold == 0 {
		c.DampingThreshold = DefaultDampingThreshold
	}
	if c.BudgetMaxDevices <= 0 {
		c.BudgetMaxDevices = DefaultBudgetDevices
	}
	if c.BudgetMaxFraction <= 0 {
		c.BudgetMaxFraction = DefaultBudgetFraction
	}
	if c.DeployBurst <= 0 {
		c.DeployBurst = 1
	}
	if c.DrainEvery == 0 {
		c.DrainEvery = DefaultDrainEvery
	}
	if c.DrainBatch <= 0 {
		c.DrainBatch = DefaultDrainBatch
	}
	if c.ConfirmGrace <= 0 {
		c.ConfirmGrace = DefaultConfirmGrace
	}
	if c.MaxCheckRetries == 0 {
		c.MaxCheckRetries = DefaultMaxCheckRetries
	}
	if c.Author == "" {
		c.Author = "reconciler"
	}
	return c
}

// backoff returns the deterministic delay before attempt n (0-based):
// base·2ⁿ capped at BackoffMax.
func (c Config) backoff(attempt int) time.Duration {
	d := c.BackoffBase
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= c.BackoffMax {
			return c.BackoffMax
		}
	}
	if d > c.BackoffMax {
		d = c.BackoffMax
	}
	return d
}

// FormatDeviceTable renders per-device states as an operator table,
// sorted by device name.
func FormatDeviceTable(rows []DeviceStatus) string {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Device < rows[j].Device })
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-12s %8s %6s  %s\n", "DEVICE", "SHARD", "STATE", "ATTEMPTS", "DRIFTS", "DETAIL")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-10s %-12s %8d %6d  %s\n", r.Device, r.Shard, r.State, r.Attempts, r.Detections, r.Detail)
	}
	return b.String()
}
