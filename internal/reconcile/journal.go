package reconcile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// EventType labels one journal entry.
type EventType string

const (
	EvDetected        EventType = "detected"         // drift observed, device entered the loop
	EvScheduled       EventType = "scheduled"        // remediation queued behind a backoff delay
	EvRemediate       EventType = "remediate"        // remediation started (budget slot acquired)
	EvConfirming      EventType = "confirming"       // deployed provisionally, health check running
	EvConverged       EventType = "converged"        // running config matches golden again
	EvRetry           EventType = "retry"            // remediation failed, rescheduled with backoff
	EvQuarantined     EventType = "quarantined"      // device parked for operator review
	EvReleased        EventType = "released"         // operator released a quarantined device
	EvSuppressed      EventType = "suppressed"       // drift ignored (quarantined device)
	EvRateLimited     EventType = "rate-limited"     // deploy token bucket empty, deferred
	EvBudgetTrip      EventType = "budget-trip"      // safety budget exceeded, breaker opened
	EvBreakerReset    EventType = "breaker-reset"    // operator re-armed the loop
	EvCheckError      EventType = "check-error"      // conformance check failed (device unreachable...)
	EvTransportRetry  EventType = "transport-retry"  // remediation hit a transport fault; rescheduled without penalty
	EvTransportGiveUp EventType = "transport-giveup" // transport retries exhausted; device re-enters via next sweep
	EvSweep           EventType = "sweep"            // periodic full-fleet conformance sweep ran
	EvHalted          EventType = "halted"           // drift seen while the breaker is open
	EvAggregateTrip   EventType = "aggregate-trip"   // global last-resort breaker opened
	EvResumed         EventType = "resumed"          // in-flight remediation interrupted by a restart, rescheduled
)

// Event is one journal entry. Active and ShardActive snapshot the
// in-flight remediation counts (fleet-wide and in the device's shard) at
// append time, so budget compliance is auditable from the journal alone
// at both levels. FireAt records when a pending timer is due (scheduled,
// rate-limited, and retried check-error entries) — the field
// ResumeFromJournal replays to re-arm timers exactly where a killed
// process left them.
type Event struct {
	Seq         int64
	At          time.Time
	Device      string // empty for loop-wide events (sweep, breaker-reset)
	Shard       string // failure domain; empty for loop-wide events
	Type        EventType
	Detail      string
	Active      int
	ShardActive int
	FireAt      time.Time // pending-timer due time; zero when none
}

// Journal is the reconciler's append-only event log. Every state
// transition lands here before any side effect is visible to callers, and
// an optional sink receives each entry as one line as it is appended —
// pointed at a file, the journal is durable across the process.
type Journal struct {
	mu     sync.Mutex
	events []Event
	seq    int64
	sink   io.Writer
}

// NewJournal returns a journal; sink may be nil.
func NewJournal(sink io.Writer) *Journal {
	return &Journal{sink: sink}
}

func (j *Journal) add(at time.Time, device, shard string, typ EventType, detail string, active, shardActive int, fireAt time.Time) Event {
	j.mu.Lock()
	j.seq++
	e := Event{Seq: j.seq, At: at, Device: device, Shard: shard, Type: typ,
		Detail: detail, Active: active, ShardActive: shardActive, FireAt: fireAt}
	j.events = append(j.events, e)
	sink := j.sink
	j.mu.Unlock()
	if sink != nil {
		fmt.Fprintf(sink, "%s\n", e.String())
	}
	return e
}

// restore seeds the journal with a replayed prefix: entries are adopted
// verbatim and the sequence counter continues after them. The sink is
// deliberately not re-fed — when resuming from a sink file, those lines
// are already in it.
func (j *Journal) restore(events []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append([]Event(nil), events...)
	j.seq = 0
	if n := len(events); n > 0 {
		j.seq = events[n-1].Seq
	}
}

// String renders one entry as a single journal line.
func (e Event) String() string {
	dev := e.Device
	if dev == "" {
		dev = "-"
	}
	sh := e.Shard
	if sh == "" {
		sh = "-"
	}
	return fmt.Sprintf("%06d %s %-14s %-12s shard=%-8s active=%d/%d %s",
		e.Seq, e.At.UTC().Format(time.RFC3339), e.Type, dev, sh, e.ShardActive, e.Active, e.Detail)
}

// Events returns a copy of every entry, oldest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// Len returns the number of entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// MaxActive returns the highest fleet-wide in-flight remediation count
// ever recorded, the journal-side witness for the safety-budget
// invariant.
func (j *Journal) MaxActive() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	max := 0
	for _, e := range j.events {
		if e.Active > max {
			max = e.Active
		}
	}
	return max
}

// MaxActiveByShard returns the highest in-flight remediation count ever
// recorded per shard — the budget-compliance invariant must hold inside
// every failure domain, not just in aggregate.
func (j *Journal) MaxActiveByShard() map[string]int {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]int)
	for _, e := range j.events {
		if e.Shard == "" {
			continue
		}
		if e.ShardActive > out[e.Shard] {
			out[e.Shard] = e.ShardActive
		}
	}
	return out
}

// Format renders the whole journal for operators.
func (j *Journal) Format() string {
	var b strings.Builder
	for _, e := range j.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ReconcileStats counts reconciler outcomes since construction.
type ReconcileStats struct {
	Detected         int64 // deviations that entered the loop
	Remediated       int64 // successful remediation deployments
	Converged        int64 // devices driven back to running == golden
	Quarantined      int64 // devices parked for operator review
	BudgetTrips      int64 // circuit-breaker openings
	Retries          int64 // failed remediation attempts rescheduled
	RateLimited      int64 // remediations deferred by the deploy token bucket
	CheckErrors      int64 // conformance checks that errored (retried)
	Suppressed       int64 // deviations ignored on quarantined devices
	TransportRetries int64 // remediations rescheduled after transport faults
	GlobalTrips      int64 // aggregate (fleet-wide) breaker openings

	// ShardTrips counts breaker openings per failure domain; shards that
	// never tripped are omitted.
	ShardTrips map[string]int64
}

// String renders the counters in one line, shard trip counts sorted.
func (s ReconcileStats) String() string {
	shards := make([]string, 0, len(s.ShardTrips))
	for name := range s.ShardTrips {
		shards = append(shards, name)
	}
	sort.Strings(shards)
	var b strings.Builder
	for i, name := range shards {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", name, s.ShardTrips[name])
	}
	return fmt.Sprintf("detected=%d remediated=%d converged=%d quarantined=%d budget-trips=%d retries=%d rate-limited=%d check-errors=%d suppressed=%d transport-retries=%d global-trips=%d shard-trips{%s}",
		s.Detected, s.Remediated, s.Converged, s.Quarantined, s.BudgetTrips, s.Retries, s.RateLimited, s.CheckErrors, s.Suppressed, s.TransportRetries, s.GlobalTrips, b.String())
}
