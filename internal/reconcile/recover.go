package reconcile

import (
	"sort"
	"strings"
	"time"
)

// ResumeFromJournal builds a reconciler that picks up exactly where a
// killed process stopped, by replaying its append-only journal: per-device
// state machines, damping history, in-flight remediation slots, breaker
// positions (shard and global), deploy token buckets, and pending timers
// are all reconstructed from the events alone. The adopted events keep
// their sequence numbers and the new journal appends after them, so a
// resumed run's journal is the uninterrupted run's journal — byte for
// byte — when the kill happened at a quiescent point.
//
// Contract:
//
//   - cfg must match the killed process's config (budgets, backoff, and
//     bucket shapes are not journaled), and cfg.Clock must read at or
//     after the last event's At.
//   - deps must address the same fleet; devices keep the shard recorded
//     in their events.
//   - Pending backoff/rate-limit/check-retry timers are re-armed at
//     their journaled due times (immediately when already past), in
//     journal order, so the virtual-clock firing order is reproduced.
//   - A device killed mid-remediation (journal ends remediating or
//     confirming) is journaled as resumed and rescheduled immediately:
//     remediation is idempotent (regenerate + redeploy golden), so
//     re-running the interrupted attempt is safe.
//   - A recheck due between the last journaled check error and the kill
//     re-runs on resume; a successful silent recheck just resets the
//     retry counter again, converging the in-memory state with the
//     uninterrupted run.
//   - The journal sink is not re-fed the adopted prefix: resuming from a
//     sink file leaves the file correct.
//
// Call Instrument before Start if shared-registry metrics are wanted;
// replayed outcomes land on the private registry, mirroring the killed
// process's Stats().
func ResumeFromJournal(deps Deps, cfg Config, events []Event) *Reconciler {
	r := New(deps, cfg)
	r.mu.Lock()
	var lastSweepAt time.Time
	var lastSweepSeq int64
	for i := range events {
		r.replayLocked(&events[i], &lastSweepAt, &lastSweepSeq)
	}
	r.journal.restore(events)
	r.armReplayedLocked(lastSweepAt, lastSweepSeq)
	r.mu.Unlock()
	return r
}

// replayLocked applies one journaled event to the in-memory state,
// without journaling anything.
func (r *Reconciler) replayLocked(e *Event, lastSweepAt *time.Time, lastSweepSeq *int64) {
	var ds *deviceState
	if e.Device != "" {
		ds = r.devices[e.Device]
		if ds == nil {
			// Shard creation time is the event's At — the same instant
			// the live reconciler created it, so the token bucket epoch
			// matches (see shardLocked).
			shName := e.Shard
			if shName == "" {
				shName = r.shardNameOf(e.Device)
			}
			ds = &deviceState{name: e.Device, state: StateConverged, changedAt: e.At}
			ds.shard = r.shardLocked(shName, e.At)
			ds.shard.devices++
			r.devices[e.Device] = ds
		}
	}
	// settle releases the budget slot an outcome event implies: the live
	// path decrements active before journaling the outcome.
	settle := func() {
		if ds.state == StateRemediating || ds.state == StateConfirming {
			r.active--
			ds.shard.active--
		}
	}
	switch e.Type {
	case EvDetected:
		ds.detections = pruneWindow(append(ds.detections, e.At), e.At, r.cfg.DampingWindow)
		r.met.detected.Inc()
		// A detection via recheck/sweep/verify implies the conformance
		// check succeeded, which reset the retry counter.
		if strings.HasPrefix(e.Detail, "recheck:") || strings.HasPrefix(e.Detail, "sweep:") ||
			strings.HasPrefix(e.Detail, "post-deploy verify:") {
			ds.checkAttempt = 0
		}
		ds.pendingRecheck = time.Time{}
		r.applyReplayLocked(ds, StateDetected, e)
	case EvScheduled:
		r.applyReplayLocked(ds, StateBackoff, e)
		ds.pendingFire = e.FireAt
		ds.pendingFireSeq = e.Seq
	case EvRateLimited:
		r.met.rateLimited.Inc()
		if ds.shard.bucket != nil {
			ds.shard.bucket.take(e.At) // mirrors the live failed take's refill
		}
		ds.pendingFire = e.FireAt
		ds.pendingFireSeq = e.Seq
	case EvRemediate:
		if ds.shard.bucket != nil {
			ds.shard.bucket.take(e.At)
		}
		r.active++
		ds.shard.active++
		r.applyReplayLocked(ds, StateRemediating, e)
	case EvConfirming:
		r.applyReplayLocked(ds, StateConfirming, e)
	case EvConverged:
		settle()
		ds.attempt, ds.checkAttempt, ds.transportAttempt = 0, 0, 0
		r.met.remediated.Inc()
		r.met.converged.Inc()
		r.applyReplayLocked(ds, StateConverged, e)
	case EvRetry:
		settle()
		ds.attempt++
		r.met.retries.Inc()
		// The live path journals scheduled in the same critical section;
		// park as detected so the slot can't be released twice.
		r.applyReplayLocked(ds, StateDetected, e)
	case EvTransportRetry:
		settle()
		ds.transportAttempt++
		r.met.transportRetries.Inc()
		r.applyReplayLocked(ds, StateDetected, e)
	case EvTransportGiveUp:
		settle()
		ds.transportAttempt = 0
		r.met.transportRetries.Inc()
		r.applyReplayLocked(ds, StateConverged, e)
	case EvQuarantined:
		if ds.state == StateRemediating || ds.state == StateConfirming {
			settle()
			ds.attempt++ // live: attempt++ preceded the quarantine check
		}
		r.met.quarantined.Inc()
		r.applyReplayLocked(ds, StateQuarantined, e)
	case EvReleased:
		ds.attempt, ds.checkAttempt = 0, 0
		ds.detections = nil
		r.applyReplayLocked(ds, StateConverged, e)
		// Release armed an immediate recheck.
		ds.pendingRecheck = e.At
		ds.pendingRecheckSeq = e.Seq
	case EvSuppressed:
		r.met.suppressed.Inc()
	case EvCheckError:
		r.met.checkErrors.Inc()
		ds.checkAttempt++
		if e.FireAt.IsZero() {
			// Gave up until the next sweep.
			ds.checkAttempt = 0
			ds.pendingRecheck = time.Time{}
		} else {
			ds.pendingRecheck = e.FireAt
			ds.pendingRecheckSeq = e.Seq
		}
	case EvBudgetTrip:
		sh := r.shardLocked(e.Shard, e.At)
		if !sh.tripped {
			sh.tripped = true
			r.trippedShards++
		}
		sh.trips++
		sh.tripsCounter.Inc()
		r.met.budgetTrips.Inc()
	case EvAggregateTrip:
		r.globalTripped = true
		r.globalTrips++
		r.met.globalTrips.Inc()
	case EvBreakerReset:
		if e.Shard != "" {
			if sh := r.shards[e.Shard]; sh != nil && sh.tripped {
				sh.tripped = false
				r.trippedShards--
			}
		} else {
			r.globalTripped = false
		}
	case EvSweep:
		*lastSweepAt = e.At
		*lastSweepSeq = e.Seq
	case EvHalted, EvResumed:
		// State already captured by the surrounding events.
	}
}

// applyReplayLocked is setStateLocked without the journal append: the
// event already exists.
func (r *Reconciler) applyReplayLocked(ds *deviceState, s State, e *Event) {
	r.applyStateLocked(ds, s)
	ds.changedAt = e.At
	ds.lastDetail = e.Detail
	if s != StateBackoff {
		ds.pendingFire = time.Time{}
	}
}

// armReplayedLocked re-creates the pending timers the killed process
// held, in journal-sequence order — the virtual clock breaks equal due
// times by timer creation order, so arming in the order the live process
// armed reproduces its firing order exactly. Devices caught mid-flight
// are settled and rescheduled.
func (r *Reconciler) armReplayedLocked(lastSweepAt time.Time, lastSweepSeq int64) {
	now := r.clock.Now()
	type arm struct {
		seq int64
		fn  func()
	}
	var arms []arm
	names := make([]string, 0, len(r.devices))
	for name := range r.devices {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ds := r.devices[name]
		if ds.state == StateBackoff && !ds.pendingFire.IsZero() {
			if !ds.pendingFire.After(now) && (r.globalTripped || ds.shard.tripped) {
				// The timer fired before the kill and parked against the
				// open breaker; ResetBreaker drains it.
				ds.pendingFire = time.Time{}
				continue
			}
			d, delay := ds, ds.pendingFire.Sub(now)
			if delay < 0 {
				delay = 0
			}
			arms = append(arms, arm{ds.pendingFireSeq, func() { r.rearmLocked(d, delay) }})
		}
		if !ds.pendingRecheck.IsZero() {
			device, delay := name, ds.pendingRecheck.Sub(now)
			if delay < 0 {
				delay = 0
			}
			arms = append(arms, arm{ds.pendingRecheckSeq, func() {
				r.clock.AfterFunc(delay, func() { r.recheck(device) })
			}})
		}
	}
	if r.cfg.SweepInterval > 0 && r.deps.SweepList != nil {
		next := now.Add(r.cfg.SweepInterval)
		if !lastSweepAt.IsZero() {
			next = lastSweepAt.Add(r.cfg.SweepInterval)
		}
		delay := next.Sub(now)
		if delay < 0 {
			delay = 0
		}
		arms = append(arms, arm{lastSweepSeq, func() { r.armSweepDelayLocked(delay) }})
	}
	sort.SliceStable(arms, func(i, j int) bool { return arms[i].seq < arms[j].seq })
	for _, a := range arms {
		a.fn()
	}
	// Devices killed mid-remediation: release the slot the dead process
	// held and redo the attempt — remediation regenerates and redeploys
	// golden, so repeating it is safe.
	for _, name := range names {
		ds := r.devices[name]
		if ds.state == StateRemediating || ds.state == StateConfirming {
			r.active--
			ds.shard.active--
			r.applyStateLocked(ds, StateDetected)
			r.eventLocked(ds.name, ds.shard, EvResumed, "in-flight remediation interrupted by restart")
			r.scheduleLocked(ds, 0)
		}
		ds.pendingFire, ds.pendingRecheck = time.Time{}, time.Time{}
		ds.pendingFireSeq, ds.pendingRecheckSeq = 0, 0
	}
}

// armSweepDelayLocked arms the sweep timer with a custom first delay
// (resume honours the last journaled sweep time), then the normal chain.
func (r *Reconciler) armSweepDelayLocked(delay time.Duration) {
	r.sweepTimer = r.clock.AfterFunc(delay, func() {
		r.Sweep()
		r.mu.Lock()
		if !r.stopped {
			r.armSweepLocked()
		}
		r.mu.Unlock()
	})
}
