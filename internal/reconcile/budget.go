package reconcile

import "time"

// tokenBucket rate-limits deploys: one token regenerates every interval,
// up to capacity. It is deterministic — no background goroutine, no
// fractional accrual — so a virtual-clock run reproduces exactly.
type tokenBucket struct {
	capacity int
	interval time.Duration
	tokens   int
	last     time.Time // last refill boundary
}

func newTokenBucket(capacity int, interval time.Duration, now time.Time) *tokenBucket {
	if interval <= 0 {
		return nil
	}
	if capacity < 1 {
		capacity = 1
	}
	return &tokenBucket{capacity: capacity, interval: interval, tokens: capacity, last: now}
}

func (b *tokenBucket) refill(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed >= b.interval {
		n := int(elapsed / b.interval)
		b.tokens += n
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = b.last.Add(b.interval * time.Duration(n))
	}
}

// take consumes a token if one is available, returning 0. Otherwise it
// returns how long until the next token accrues.
func (b *tokenBucket) take(now time.Time) time.Duration {
	b.refill(now)
	if b.tokens > 0 {
		b.tokens--
		return 0
	}
	return b.last.Add(b.interval).Sub(now)
}
