package reconcile

import (
	"time"

	"github.com/robotron-net/robotron/internal/vclock"
)

// The reconciler's time source lives in internal/vclock so other
// subsystems (notably the scenario engine) can share one deterministic
// clock with the reconciler. These aliases keep the historical
// reconcile-package names working.

// Clock abstracts time for the reconciler; see vclock.Clock.
type Clock = vclock.Clock

// Timer is a cancelable pending call; see vclock.Timer.
type Timer = vclock.Timer

// VirtualClock is the manually advanced deterministic clock; see
// vclock.VirtualClock.
type VirtualClock = vclock.VirtualClock

// RealClock returns the wall-time Clock.
func RealClock() Clock { return vclock.RealClock() }

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return vclock.NewVirtualClock(start)
}
