package reconcile

import (
	"fmt"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// reconcileMetrics are the loop's counter bindings. The reconciler binds
// them to a private registry at construction so Stats() always works;
// Instrument rebinds them to a shared registry. All increments happen
// under Reconciler.mu, so rebinding is race-free, but counts recorded
// before Instrument stay on the old registry — instrument before
// starting the loop.
type reconcileMetrics struct {
	detected         *telemetry.Counter
	remediated       *telemetry.Counter
	converged        *telemetry.Counter
	quarantined      *telemetry.Counter
	budgetTrips      *telemetry.Counter
	retries          *telemetry.Counter
	rateLimited      *telemetry.Counter
	checkErrors      *telemetry.Counter
	suppressed       *telemetry.Counter
	transportRetries *telemetry.Counter
	globalTrips      *telemetry.Counter
}

func bindReconcileMetrics(reg *telemetry.Registry) reconcileMetrics {
	c := func(name, help string) *telemetry.Counter {
		reg.Help(name, help)
		return reg.Counter(name)
	}
	return reconcileMetrics{
		detected:         c("robotron_reconcile_detected_total", "deviations that entered the loop"),
		remediated:       c("robotron_reconcile_remediated_total", "successful remediation deployments"),
		converged:        c("robotron_reconcile_converged_total", "devices driven back to running == golden"),
		quarantined:      c("robotron_reconcile_quarantined_total", "devices parked for operator review"),
		budgetTrips:      c("robotron_reconcile_budget_trips_total", "safety-budget circuit-breaker openings"),
		retries:          c("robotron_reconcile_retries_total", "failed remediation attempts rescheduled"),
		rateLimited:      c("robotron_reconcile_rate_limited_total", "remediations deferred by the deploy token bucket"),
		checkErrors:      c("robotron_reconcile_check_errors_total", "conformance checks that errored (retried)"),
		suppressed:       c("robotron_reconcile_suppressed_total", "deviations ignored on quarantined devices"),
		transportRetries: c("robotron_reconcile_transport_retries_total", "remediations rescheduled after transport faults (no quarantine credit)"),
		globalTrips:      c("robotron_reconcile_global_trips_total", "aggregate (fleet-wide) circuit-breaker openings"),
	}
}

// Instrument rebinds the outcome counters to reg and registers live
// state gauges (tracked devices by state, breaker position) plus a
// health check that fails while the circuit breaker is open.
// Instrument(nil) detaches everything back onto no-op counters.
func (r *Reconciler) Instrument(reg *telemetry.Registry) {
	r.mu.Lock()
	r.met = bindReconcileMetrics(reg)
	r.reg = reg
	// Shards created before Instrument carry their per-shard metrics over
	// to the new registry (their trip counts restart from zero there, as
	// the outcome counters do).
	for _, sh := range r.shards {
		sh.tripsCounter = reg.Counter("robotron_reconcile_shard_trips_total",
			telemetry.Label{Key: "shard", Value: sh.name})
		r.instrumentShardLocked(sh)
	}
	r.mu.Unlock()
	if reg == nil {
		return
	}
	reg.Help("robotron_reconcile_devices", "tracked devices by reconciliation state")
	for _, s := range []State{StateDetected, StateBackoff, StateRemediating, StateConfirming, StateConverged, StateQuarantined} {
		s := s
		reg.GaugeFunc("robotron_reconcile_devices",
			func() float64 { return float64(r.countState(s)) },
			telemetry.Label{Key: "state", Value: string(s)})
	}
	reg.Help("robotron_reconcile_breaker_open", "1 while any safety-budget circuit breaker (shard or global) is open")
	reg.GaugeFunc("robotron_reconcile_breaker_open", func() float64 {
		if r.Tripped() {
			return 1
		}
		return 0
	})
	reg.Help("robotron_reconcile_global_breaker_open", "1 while the global aggregate breaker is open")
	reg.GaugeFunc("robotron_reconcile_global_breaker_open", func() float64 {
		if r.GlobalTripped() {
			return 1
		}
		return 0
	})
	reg.RegisterHealth("reconcile-breaker", func() (string, error) {
		if r.Tripped() {
			return "", fmt.Errorf("safety-budget circuit breaker is open — inspect drift and ResetBreaker()")
		}
		return "breaker closed", nil
	})
}

// instrumentShardLocked registers one shard's labeled gauges on the
// current registry. Called under r.mu; safe because the registry's
// exporters invoke gauge callbacks outside the registry lock, so the
// r.mu→registry.mu order here is one-way.
func (r *Reconciler) instrumentShardLocked(sh *shard) {
	reg := r.reg
	if reg == nil {
		return
	}
	name := sh.name
	label := telemetry.Label{Key: "shard", Value: name}
	reg.Help("robotron_reconcile_shard_breaker_open", "1 while this shard's circuit breaker is open")
	reg.GaugeFunc("robotron_reconcile_shard_breaker_open", func() float64 {
		if r.ShardTripped(name) {
			return 1
		}
		return 0
	}, label)
	reg.Help("robotron_reconcile_shard_active", "in-flight remediations in this shard")
	reg.GaugeFunc("robotron_reconcile_shard_active", func() float64 {
		return float64(r.shardGauge(name, func(sh *shard) int { return sh.active }))
	}, label)
	reg.Help("robotron_reconcile_shard_backlog", "open devices awaiting remediation in this shard")
	reg.GaugeFunc("robotron_reconcile_shard_backlog", func() float64 {
		return float64(r.shardGauge(name, func(sh *shard) int { return sh.open - sh.active }))
	}, label)
	reg.Help("robotron_reconcile_shard_trips_total", "circuit-breaker openings in this shard")
}

// shardGauge reads one shard field under the lock for a gauge callback.
func (r *Reconciler) shardGauge(name string, f func(*shard) int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[name]
	if sh == nil {
		return 0
	}
	return f(sh)
}

// countState counts tracked devices currently in state s.
func (r *Reconciler) countState(s State) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ds := range r.devices {
		if ds.state == s {
			n++
		}
	}
	return n
}

// VerifyDevices runs a synchronous conformance pass over the named
// devices — the post-deploy hook that closes the pipeline trace. Each
// check records a "verify-device" child span under span (nil disables
// tracing); drift and check errors feed the normal reconciliation loop
// exactly as the periodic sweep would. Returns the number of devices
// checked.
func (r *Reconciler) VerifyDevices(devices []string, span *telemetry.Span) int {
	checked := 0
	for _, name := range devices {
		r.mu.Lock()
		stopped := r.stopped
		r.mu.Unlock()
		if stopped {
			break
		}
		sp := span.Child("verify-device")
		sp.SetAttr("device", name)
		checked++
		dev, err := r.deps.Checker.CheckDevice(name)
		switch {
		case err != nil:
			sp.SetAttr("result", "check-error")
			r.HandleCheckError(name, err)
		case dev != nil:
			sp.SetAttr("result", "drift")
			r.noteDrift(dev.Device, fmt.Sprintf("post-deploy verify: drift +%d/-%d lines", dev.Added, dev.Removed))
		default:
			sp.SetAttr("result", "conforming")
			r.mu.Lock()
			if ds := r.devices[name]; ds != nil {
				ds.checkAttempt = 0
			}
			r.mu.Unlock()
		}
		sp.End()
	}
	return checked
}
