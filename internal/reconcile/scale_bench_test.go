package reconcile

import (
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/monitor"
)

// BenchmarkScaleReconcileConverge extends the convergence benchmark to
// query-storm fleet sizes: the whole fleet drifts at once and the loop
// drives every device back. Uses the fake world + virtual clock so the
// number isolates reconciler overhead (state machine, journal, budget
// math, scheduling). The 16384 size is gated behind
// ROBOTRON_BENCH_LARGE=1; `make bench-scale` sets the variable.
func BenchmarkScaleReconcileConverge(b *testing.B) {
	sizes := []int{256, 4096}
	if os.Getenv("ROBOTRON_BENCH_LARGE") == "1" {
		sizes = append(sizes, 16384)
	}
	for _, fleet := range sizes {
		b.Run(fmt.Sprintf("fleet=%d", fleet), func(b *testing.B) {
			names := make([]string, fleet)
			for i := range names {
				names[i] = fmt.Sprintf("dev%05d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newFakeWorld(names...)
				clk := NewVirtualClock(t0)
				r := New(Deps{
					Golden:   w,
					Deployer: deployerFunc(w.deployClock(clk)),
					Checker:  w,
				}, Config{
					Clock: clk, BackoffBase: time.Second,
					DampingThreshold: -1,
					BudgetMaxDevices: fleet, BudgetMaxFraction: 1.0,
				})
				for _, name := range names {
					w.drift(name)
				}
				b.StartTimer()
				for _, name := range names {
					r.HandleDeviation(monitor.Deviation{Device: name, Added: 1})
				}
				clk.Advance(time.Minute)
				b.StopTimer()
				if got := len(w.deploys); got != fleet {
					b.Fatalf("deploys = %d, want %d", got, fleet)
				}
				b.StartTimer()
			}
		})
	}
}
