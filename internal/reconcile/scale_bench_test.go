package reconcile

import (
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/monitor"
)

// BenchmarkScaleReconcileConverge extends the convergence benchmark to
// query-storm fleet sizes: the whole fleet drifts at once and the loop
// drives every device back. Uses the fake world + virtual clock so the
// number isolates reconciler overhead (state machine, journal, budget
// math, scheduling). Two modes: "global" keeps the fleet in one failure
// domain (every name derives to the same shard), "sharded" spreads it
// over 64 sites via the SiteOf dependency — the budget/breaker math then
// runs on per-shard counters. The 16384 size is gated behind
// ROBOTRON_BENCH_LARGE=1; `make bench-reconcile` and `make bench-scale`
// set the variable.
func BenchmarkScaleReconcileConverge(b *testing.B) {
	sizes := []int{256, 4096}
	if os.Getenv("ROBOTRON_BENCH_LARGE") == "1" {
		sizes = append(sizes, 16384)
	}
	const sites = 64
	for _, fleet := range sizes {
		names := make([]string, fleet)
		siteOf := make(map[string]string, fleet)
		for i := range names {
			names[i] = fmt.Sprintf("dev%05d", i)
			siteOf[names[i]] = fmt.Sprintf("site%02d", i%sites)
		}
		for _, mode := range []string{"global", "sharded"} {
			b.Run(fmt.Sprintf("fleet=%d/%s", fleet, mode), func(b *testing.B) {
				deps := Deps{}
				if mode == "sharded" {
					deps.SiteOf = func(d string) string { return siteOf[d] }
					deps.ShardFleetSize = func(string) int { return fleet / sites }
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					w := newFakeWorld(names...)
					clk := NewVirtualClock(t0)
					d := deps
					d.Golden = w
					d.Deployer = deployerFunc(w.deployClock(clk))
					d.Checker = w
					r := New(d, Config{
						Clock: clk, BackoffBase: time.Second,
						DampingThreshold: -1,
						BudgetMaxDevices: fleet, BudgetMaxFraction: 1.0,
					})
					for _, name := range names {
						w.drift(name)
					}
					b.StartTimer()
					for _, name := range names {
						r.HandleDeviation(monitor.Deviation{Device: name, Added: 1})
					}
					clk.Advance(time.Minute)
					b.StopTimer()
					if got := len(w.deploys); got != fleet {
						b.Fatalf("deploys = %d, want %d", got, fleet)
					}
					b.StartTimer()
				}
			})
		}
	}
}
