package reconcile

import (
	"fmt"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/monitor"
)

// BenchmarkReconcileConverge measures time-to-convergence of the control
// loop as fleet size grows: every device in the fleet drifts at once and
// the loop drives them all back under a budget sized to the fleet. Uses
// the fake world + virtual clock so the benchmark isolates reconciler
// overhead (state machine, journal, scheduling) from netsim and deploy
// costs.
func BenchmarkReconcileConverge(b *testing.B) {
	for _, fleet := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("fleet=%d", fleet), func(b *testing.B) {
			names := make([]string, fleet)
			for i := range names {
				names[i] = fmt.Sprintf("dev%03d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := newFakeWorld(names...)
				clk := NewVirtualClock(t0)
				r := New(Deps{
					Golden:   w,
					Deployer: deployerFunc(w.deployClock(clk)),
					Checker:  w,
				}, Config{
					Clock: clk, BackoffBase: time.Second,
					DampingThreshold: -1,
					BudgetMaxDevices: fleet, BudgetMaxFraction: 1.0,
				})
				for _, name := range names {
					w.drift(name)
				}
				b.StartTimer()
				for _, name := range names {
					r.HandleDeviation(monitor.Deviation{Device: name, Added: 1})
				}
				clk.Advance(time.Minute)
				b.StopTimer()
				if got := len(w.deploys); got != fleet {
					b.Fatalf("deploys = %d, want %d", got, fleet)
				}
				for _, name := range names {
					if r.States()[name] != StateConverged {
						b.Fatalf("%s did not converge", name)
					}
				}
				b.StartTimer()
			}
		})
	}
}
