// End-to-end reconciliation tests over the full stack: netsim devices
// emit syslog, the classifier routes CONFIG_CHANGED to config
// monitoring, and the reconciler closes the loop by regenerating golden
// and redeploying. External test package because core imports reconcile.
package reconcile_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/core"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/reconcile"
)

var e2eT0 = time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)

// newReconciledPOP provisions a 6-device POP with the reconciler enabled
// under the given config (Clock is filled in by the caller via cfg).
func newReconciledPOP(t testing.TB, cfg reconcile.Config) *core.Robotron {
	t.Helper()
	r, err := core.New(core.Options{EnableReconciler: true, Reconcile: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	ctx := design.ChangeContext{
		EmployeeID: "e1", TicketID: "T-1", Description: "e2e",
		Domain: "pop", NowUnix: 1_700_000_000,
	}
	res, err := r.ProvisionCluster(ctx, "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Devices) != 6 {
		t.Fatalf("devices = %v", res.Devices)
	}
	if err := r.InstallStandardMonitoring(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Reconciler.Stop)
	return r
}

func drift(t testing.TB, r *core.Robotron, name, line string) {
	t.Helper()
	d, ok := r.Fleet.Device(name)
	if !ok {
		t.Fatalf("no device %s", name)
	}
	if err := d.ApplyManualChange(line); err != nil {
		t.Fatal(err)
	}
}

func mustConform(t testing.TB, r *core.Robotron, name string) {
	t.Helper()
	d, _ := r.Fleet.Device(name)
	golden, err := r.Generator.Golden(name)
	if err != nil {
		t.Fatal(err)
	}
	running, err := d.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if running != golden {
		t.Errorf("%s running config still deviates from golden", name)
	}
}

// TestE2EDriftConvergesWithoutManualIntervention injects drift on k
// devices and expects the closed loop to restore all of them with zero
// manual remediation calls.
func TestE2EDriftConvergesWithoutManualIntervention(t *testing.T) {
	clk := reconcile.NewVirtualClock(e2eT0)
	r := newReconciledPOP(t, reconcile.Config{
		Clock: clk, BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 10, BudgetMaxFraction: 1.0,
	})
	rec := r.Reconciler
	drifted := []string{"pr1.pop1-c1", "psw1.pop1-c1", "psw2.pop1-c1"}
	for i, name := range drifted {
		drift(t, r, name, fmt.Sprintf("username intruder%d secret", i))
	}
	// Detection already happened synchronously via syslog; remediation is
	// parked behind per-device backoff on the virtual clock.
	states := rec.States()
	for _, name := range drifted {
		if states[name] != reconcile.StateBackoff {
			t.Errorf("%s = %q before advance, want backoff", name, states[name])
		}
	}
	clk.Advance(time.Minute)
	for _, name := range drifted {
		if s := rec.States()[name]; s != reconcile.StateConverged {
			t.Fatalf("%s = %q after advance, want converged\n%s", name, s, rec.Journal().Format())
		}
		mustConform(t, r, name)
	}
	s := rec.Stats()
	if s.Detected != 3 || s.Converged != 3 || s.Quarantined != 0 || s.BudgetTrips != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// TestE2EFlapDampingQuarantine drifts one device 3 times inside the
// damping window: the third lands it in quarantine and it is never
// redeployed.
func TestE2EFlapDampingQuarantine(t *testing.T) {
	clk := reconcile.NewVirtualClock(e2eT0)
	r := newReconciledPOP(t, reconcile.Config{
		Clock: clk, BackoffBase: time.Second,
		DampingWindow: time.Hour, DampingThreshold: 3,
	})
	rec := r.Reconciler
	const victim = "psw3.pop1-c1"
	for i := 0; i < 2; i++ {
		drift(t, r, victim, fmt.Sprintf("username flapper%d secret", i))
		clk.Advance(time.Minute)
		if s := rec.States()[victim]; s != reconcile.StateConverged {
			t.Fatalf("round %d: %s = %q\n%s", i, victim, s, rec.Journal().Format())
		}
	}
	remediations := 0
	for _, e := range rec.Journal().Events() {
		if e.Type == reconcile.EvRemediate {
			remediations++
		}
	}
	drift(t, r, victim, "username flapper2 secret")
	if s := rec.States()[victim]; s != reconcile.StateQuarantined {
		t.Fatalf("%s = %q after third drift, want quarantined", victim, s)
	}
	clk.Advance(time.Hour)
	for _, e := range rec.Journal().Events() {
		if e.Type == reconcile.EvRemediate {
			remediations--
		}
	}
	if remediations != 0 {
		t.Error("quarantined device was redeployed")
	}
	d, _ := r.Fleet.Device(victim)
	running, _ := d.RunningConfig()
	if !strings.Contains(running, "flapper2") {
		t.Error("quarantined device's manual change was reverted")
	}
	if s := rec.Stats(); s.Quarantined != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestE2EBudgetBreakerUnderMassDrift drifts 4 of 6 devices against a
// budget of 2: the breaker trips, nothing deploys, and after an operator
// ResetBreaker the backlog drains without ever exceeding the budget.
func TestE2EBudgetBreakerUnderMassDrift(t *testing.T) {
	clk := reconcile.NewVirtualClock(e2eT0)
	var alerts []string
	var mu sync.Mutex
	r := newReconciledPOP(t, reconcile.Config{
		Clock: clk, BackoffBase: time.Second, DampingThreshold: -1,
		BudgetMaxDevices: 2, BudgetMaxFraction: 1.0,
		Alert: func(f string, a ...any) {
			mu.Lock()
			alerts = append(alerts, fmt.Sprintf(f, a...))
			mu.Unlock()
		},
	})
	rec := r.Reconciler
	mass := []string{"pr1.pop1-c1", "pr2.pop1-c1", "psw1.pop1-c1", "psw2.pop1-c1"}
	for i, name := range mass {
		drift(t, r, name, fmt.Sprintf("username mass%d secret", i))
	}
	if !rec.Tripped() {
		t.Fatal("breaker did not trip: 4 open devices > budget 2")
	}
	clk.Advance(time.Hour)
	for _, e := range rec.Journal().Events() {
		if e.Type == reconcile.EvRemediate {
			t.Fatalf("deploy happened while breaker open:\n%s", rec.Journal().Format())
		}
	}
	mu.Lock()
	gotAlert := len(alerts) > 0
	mu.Unlock()
	if !gotAlert {
		t.Error("breaker trip raised no alert")
	}
	rec.ResetBreaker()
	clk.Advance(time.Hour)
	for _, name := range mass {
		if s := rec.States()[name]; s != reconcile.StateConverged {
			t.Fatalf("%s = %q after reset, want converged\n%s", name, s, rec.Journal().Format())
		}
		mustConform(t, r, name)
	}
	// The journal proves concurrent remediations never exceeded the budget.
	if max := rec.Journal().MaxActive(); max > 2 {
		t.Errorf("max concurrent remediations = %d, budget 2", max)
	}
	if s := rec.Stats(); s.BudgetTrips != 1 || s.Converged != 4 {
		t.Errorf("stats = %+v", s)
	}
}

// TestE2ECheckErrorRetryQueue: a CONFIG_CHANGED alert for an unreachable
// device errors the triggered check; the reconciler queues a retry and
// finds the drift once the device is back.
func TestE2ECheckErrorRetryQueue(t *testing.T) {
	clk := reconcile.NewVirtualClock(e2eT0)
	r := newReconciledPOP(t, reconcile.Config{
		Clock: clk, BackoffBase: time.Second, DampingThreshold: -1, MaxCheckRetries: 5,
	})
	rec := r.Reconciler
	const victim = "psw4.pop1-c1"
	d, _ := r.Fleet.Device(victim)
	d.SetDown(true)
	// Provisioning-time commits already error a few checks (no golden
	// yet), so assert the delta from this event only.
	base := r.ConfigMon.CheckErrors()
	// The change event arrives but the collection fails.
	r.Classifier.Process(netsim.SyslogMessage{
		Host: victim, App: "config", Severity: 5,
		Text: "CONFIG_CHANGED: configuration changed out-of-band",
	})
	if n := r.ConfigMon.CheckErrors(); n != base+1 {
		t.Fatalf("monitor check errors = %d, want %d", n, base+1)
	}
	// Device comes back already drifted; the syslog for the out-of-band
	// change was lost (sink detached), so only the retry can find it.
	d.SetDown(false)
	d.SetSyslogSink(nil)
	cur, err := d.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InjectRunningConfig(cur + "username ghost secret\n"); err != nil {
		t.Fatal(err)
	}
	d.SetSyslogSink(func(m netsim.SyslogMessage) { r.Classifier.Process(m) })
	clk.Advance(time.Minute)
	if s := rec.States()[victim]; s != reconcile.StateConverged {
		t.Fatalf("%s = %q, want converged\n%s", victim, s, rec.Journal().Format())
	}
	mustConform(t, r, victim)
	if s := rec.Stats(); s.CheckErrors == 0 {
		t.Errorf("stats = %+v, want CheckErrors > 0", s)
	}
}

// TestE2ESweepCatchesLostEvent: drift whose syslog never reached the
// classifier is found by the periodic full-fleet sweep.
func TestE2ESweepCatchesLostEvent(t *testing.T) {
	clk := reconcile.NewVirtualClock(e2eT0)
	r := newReconciledPOP(t, reconcile.Config{
		Clock: clk, BackoffBase: time.Second, SweepInterval: 5 * time.Minute,
		DampingThreshold: -1,
	})
	rec := r.Reconciler
	const victim = "pr1.pop1-c1"
	d, _ := r.Fleet.Device(victim)
	d.SetSyslogSink(nil) // event lost
	cur, err := d.RunningConfig()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InjectRunningConfig(cur + "username silent secret\n"); err != nil {
		t.Fatal(err)
	}
	d.SetSyslogSink(func(m netsim.SyslogMessage) { r.Classifier.Process(m) })
	clk.Advance(10 * time.Minute)
	if s := rec.States()[victim]; s != reconcile.StateConverged {
		t.Fatalf("%s = %q, want converged\n%s", victim, s, rec.Journal().Format())
	}
	mustConform(t, r, victim)
}

// TestE2EConcurrentDeviationsRace fires concurrent out-of-band changes
// at one reconciler under the real clock; run with -race. All devices
// must converge and the journal must respect the budget throughout.
func TestE2EConcurrentDeviationsRace(t *testing.T) {
	r := newReconciledPOP(t, reconcile.Config{
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		MaxAttempts: 50, DampingThreshold: -1,
		// Budget above fleet size: this test exercises churn, not the
		// breaker (the breaker has its own test above).
		BudgetMaxDevices: 100, BudgetMaxFraction: 1.0,
		SweepInterval: 20 * time.Millisecond,
	})
	rec := r.Reconciler
	devices := []string{
		"pr1.pop1-c1", "pr2.pop1-c1",
		"psw1.pop1-c1", "psw2.pop1-c1", "psw3.pop1-c1", "psw4.pop1-c1",
	}
	var wg sync.WaitGroup
	for i, name := range devices {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			d, _ := r.Fleet.Device(name)
			for round := 0; round < 3; round++ {
				_ = d.ApplyManualChange(fmt.Sprintf("username race%d-%d secret", i, round))
				time.Sleep(time.Millisecond)
			}
		}(i, name)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		allConverged := true
		for _, name := range devices {
			d, _ := r.Fleet.Device(name)
			golden, gerr := r.Generator.Golden(name)
			running, rerr := d.RunningConfig()
			if gerr != nil || rerr != nil || running != golden {
				allConverged = false
			}
		}
		if allConverged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not converge\n%s", rec.DeviceTable())
		}
		rec.Sweep() // belt and braces: pick up anything a lost race dropped
		time.Sleep(5 * time.Millisecond)
	}
	if max := rec.Journal().MaxActive(); max > 6 {
		t.Errorf("max concurrent remediations = %d, budget 6 (min(100, 1.0·6))", max)
	}
	if s := rec.Stats(); s.Converged == 0 {
		t.Errorf("stats = %+v", s)
	}
}
