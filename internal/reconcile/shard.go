package reconcile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/robotron-net/robotron/internal/telemetry"
)

// shard is one failure domain's slice of the reconciler: its own safety
// budget, circuit breaker, deploy token bucket, and in-flight/backlog
// accounting. A drift storm in one site trips only that shard's breaker;
// every other domain keeps converging. All fields are guarded by
// Reconciler.mu.
type shard struct {
	name    string
	tripped bool  // this shard's circuit breaker is open
	trips   int64 // lifetime breaker openings
	open    int   // devices in detected|backoff|remediating|confirming
	active  int   // devices in remediating|confirming
	devices int   // devices ever tracked in this shard
	bucket  *tokenBucket

	tripsCounter *telemetry.Counter
}

// DeriveShard maps a device name to its failure-domain shard when no
// SiteOf dependency is wired: the site segment of an FBNet-style name
// ("psw1.popa-c1" → "popa"), else the leading non-digit prefix
// ("dev00017" → "dev"). The mapping is deterministic and total, so
// journal replay regroups devices identically.
func DeriveShard(device string) string {
	if i := strings.IndexByte(device, '.'); i >= 0 && i+1 < len(device) {
		scope := device[i+1:]
		if j := strings.IndexByte(scope, '-'); j > 0 {
			return scope[:j]
		}
		return scope
	}
	for i := 0; i < len(device); i++ {
		if device[i] >= '0' && device[i] <= '9' {
			if i == 0 {
				break
			}
			return device[:i]
		}
	}
	if device == "" {
		return "default"
	}
	return device
}

// shardNameOf resolves a device's failure domain: the wired SiteOf
// dependency (FBNet site membership) with DeriveShard as the
// deterministic fallback for devices the fleet model doesn't know.
func (r *Reconciler) shardNameOf(device string) string {
	if r.deps.SiteOf != nil {
		if s := r.deps.SiteOf(device); s != "" {
			return s
		}
	}
	return DeriveShard(device)
}

// shardLocked returns (creating on first use) the named shard. The token
// bucket's epoch is the shard's creation instant, which by construction
// equals the At of the shard's first journal event — the invariant
// ResumeFromJournal relies on to rebuild bucket state exactly.
func (r *Reconciler) shardLocked(name string, now time.Time) *shard {
	sh := r.shards[name]
	if sh == nil {
		sh = &shard{name: name}
		sh.bucket = newTokenBucket(r.cfg.DeployBurst, r.cfg.DeployEvery, now)
		sh.tripsCounter = r.reg.Counter("robotron_reconcile_shard_trips_total",
			telemetry.Label{Key: "shard", Value: name})
		r.shards[name] = sh
		r.instrumentShardLocked(sh)
	}
	return sh
}

// shardBudgetLocked resolves one shard's safety budget
// min(K, X·shard_fleet). Without a ShardFleetSize dependency the
// fraction falls back to the fleet-wide size, preserving the historical
// single-domain behaviour.
func (r *Reconciler) shardBudgetLocked(sh *shard) int {
	b := r.cfg.BudgetMaxDevices
	if r.cfg.BudgetMaxFraction > 0 {
		n := 0
		if r.deps.ShardFleetSize != nil {
			n = r.deps.ShardFleetSize(sh.name)
		} else if r.deps.FleetSize != nil {
			n = r.deps.FleetSize()
		}
		if n > 0 {
			f := int(r.cfg.BudgetMaxFraction * float64(n))
			if f < 1 {
				f = 1
			}
			if f < b {
				b = f
			}
		}
	}
	if b < 1 {
		b = 1
	}
	return b
}

// globalCapLocked resolves the fleet-wide demand cap behind the
// aggregate breaker: min of GlobalBudgetMaxDevices and
// GlobalBudgetMaxFraction·fleet, 0 when both are unset (disabled).
func (r *Reconciler) globalCapLocked() int {
	c := 0
	if r.cfg.GlobalBudgetMaxDevices > 0 {
		c = r.cfg.GlobalBudgetMaxDevices
	}
	if r.cfg.GlobalBudgetMaxFraction > 0 && r.deps.FleetSize != nil {
		if n := r.deps.FleetSize(); n > 0 {
			f := int(r.cfg.GlobalBudgetMaxFraction * float64(n))
			if f < 1 {
				f = 1
			}
			if c == 0 || f < c {
				c = f
			}
		}
	}
	return c
}

// tripShardLocked opens one shard's breaker and, when enough shards are
// open, escalates to the global aggregate breaker.
func (r *Reconciler) tripShardLocked(sh *shard, device, detail string, alerts *[]string) {
	sh.tripped = true
	sh.trips++
	sh.tripsCounter.Inc()
	r.trippedShards++
	r.met.budgetTrips.Inc()
	r.eventLocked(device, sh, EvBudgetTrip, detail)
	*alerts = append(*alerts, fmt.Sprintf(
		"reconcile: safety budget exceeded in shard %s (%s) — shard halted; mass drift usually means the desired state is wrong. Inspect and ResetBreaker().",
		sh.name, detail))
	if n := r.cfg.AggregateTripShards; n > 0 && r.trippedShards >= n && !r.globalTripped {
		r.tripGlobalLocked(fmt.Sprintf("%d shard breaker(s) open, aggregate threshold %d: loop halted fleet-wide",
			r.trippedShards, n), alerts)
	}
}

// tripGlobalLocked opens the last-resort fleet-wide breaker.
func (r *Reconciler) tripGlobalLocked(detail string, alerts *[]string) {
	r.globalTripped = true
	r.globalTrips++
	r.met.globalTrips.Inc()
	r.eventLocked("", nil, EvAggregateTrip, detail)
	*alerts = append(*alerts, fmt.Sprintf(
		"reconcile: %s — inspect drift fleet-wide and ResetBreaker()", detail))
}

// isOpenState reports whether a state counts against the demand-side
// safety budget (the loop is committed to remediating the device).
func isOpenState(s State) bool {
	switch s {
	case StateDetected, StateBackoff, StateRemediating, StateConfirming:
		return true
	}
	return false
}

// ShardOf reports which failure domain a device name maps to.
func (r *Reconciler) ShardOf(device string) string { return r.shardNameOf(device) }

// Shards returns the names of every shard seen so far, sorted.
func (r *Reconciler) Shards() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.shards))
	for name := range r.shards {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ShardTripped reports whether the named shard's breaker is open.
func (r *Reconciler) ShardTripped(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh := r.shards[name]
	return sh != nil && sh.tripped
}

// GlobalTripped reports whether the fleet-wide aggregate breaker is open.
func (r *Reconciler) GlobalTripped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.globalTripped
}

// ShardStatus is the exported view of one shard, served on /reconcile
// and rendered by `robotron obs reconcile`.
type ShardStatus struct {
	Shard   string `json:"shard"`
	Tripped bool   `json:"tripped"`
	Trips   int64  `json:"trips"`
	Budget  int    `json:"budget"`  // min(K, X·shard_fleet) right now
	Active  int    `json:"active"`  // in-flight remediations (budget occupancy)
	Open    int    `json:"open"`    // devices the loop is committed to
	Backlog int    `json:"backlog"` // open − active: waiting on backoff/breaker
	Devices int    `json:"devices"` // devices ever tracked in this shard
}

// Snapshot is the reconciler's point-in-time operational state.
type Snapshot struct {
	Tripped       bool          `json:"tripped"`        // any breaker open (shard or global)
	GlobalTripped bool          `json:"global_tripped"` // aggregate breaker open
	GlobalTrips   int64         `json:"global_trips"`
	Active        int           `json:"active"` // fleet-wide in-flight remediations
	Open          int           `json:"open"`   // fleet-wide open devices
	Devices       int           `json:"devices"`
	Shards        []ShardStatus `json:"shards"`
}

// Snapshot captures per-shard breaker position, budget occupancy, and
// backlog depth — the programmatic source the HTTP and CLI surfaces are
// parity-pinned to.
func (r *Reconciler) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Tripped:       r.globalTripped || r.trippedShards > 0,
		GlobalTripped: r.globalTripped,
		GlobalTrips:   r.globalTrips,
		Active:        r.active,
		Open:          r.open,
		Devices:       len(r.devices),
		Shards:        make([]ShardStatus, 0, len(r.shards)),
	}
	for name, sh := range r.shards {
		s.Shards = append(s.Shards, ShardStatus{
			Shard:   name,
			Tripped: sh.tripped,
			Trips:   sh.trips,
			Budget:  r.shardBudgetLocked(sh),
			Active:  sh.active,
			Open:    sh.open,
			Backlog: sh.open - sh.active,
			Devices: sh.devices,
		})
	}
	sort.Slice(s.Shards, func(i, j int) bool { return s.Shards[i].Shard < s.Shards[j].Shard })
	return s
}

// FormatSnapshot renders a snapshot as an operator table.
func FormatSnapshot(s Snapshot) string {
	var b strings.Builder
	breaker := "closed"
	if s.GlobalTripped {
		breaker = "OPEN (aggregate)"
	} else if s.Tripped {
		breaker = "OPEN (shard)"
	}
	fmt.Fprintf(&b, "breaker=%s active=%d open=%d devices=%d shards=%d\n",
		breaker, s.Active, s.Open, s.Devices, len(s.Shards))
	fmt.Fprintf(&b, "%-16s %-8s %6s %6s %6s %7s %7s %5s\n",
		"SHARD", "BREAKER", "BUDGET", "ACTIVE", "OPEN", "BACKLOG", "DEVICES", "TRIPS")
	for _, sh := range s.Shards {
		pos := "closed"
		if sh.Tripped {
			pos = "OPEN"
		}
		fmt.Fprintf(&b, "%-16s %-8s %6d %6d %6d %7d %7d %5d\n",
			sh.Shard, pos, sh.Budget, sh.Active, sh.Open, sh.Backlog, sh.Devices, sh.Trips)
	}
	return b.String()
}
