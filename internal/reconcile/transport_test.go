package reconcile

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/netsim"
)

// transportFlaky wraps a deployer so its first n calls fail with a
// transport-classified error (the management session flapped), after
// which the underlying deployer runs normally.
type transportFlaky struct {
	mu    sync.Mutex
	fails int
	calls int
	next  deployerFunc
}

func (f *transportFlaky) Deploy(c map[string]string, o deploy.Options) (deploy.Report, error) {
	f.mu.Lock()
	f.calls++
	fail := f.fails > 0
	if fail {
		f.fails--
	}
	f.mu.Unlock()
	if fail {
		return deploy.Report{}, fmt.Errorf("deploy: commit failed: %w", netsim.ErrConnDropped)
	}
	return f.next(c, o)
}

func newTransportRec(w *fakeWorld, cfg Config, fails int) (*Reconciler, *VirtualClock, *transportFlaky) {
	clk := NewVirtualClock(t0)
	cfg.Clock = clk
	fd := &transportFlaky{fails: fails, next: w.deployClock(clk)}
	r := New(Deps{Golden: w, Deployer: fd, Checker: w}, cfg)
	return r, clk, fd
}

// A flapping management session during remediation must ride the bounded
// transport-retry queue, not the drift→quarantine path: with
// MaxAttempts=1 any ordinary remediation failure would quarantine
// immediately, so converging here proves transport errors carry no
// quarantine credit.
func TestTransportErrorsNeverQuarantine(t *testing.T) {
	w := newFakeWorld("d1")
	r, clk, fd := newTransportRec(w, Config{
		BackoffBase: time.Second, MaxAttempts: 1, MaxCheckRetries: 3, DampingThreshold: -1,
	}, 2)
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Minute)
	wantState(t, r, "d1", StateConverged)
	if w.running["d1"] != w.golden["d1"] {
		t.Error("running config not restored")
	}
	if fd.calls != 3 {
		t.Errorf("deploy calls = %d, want 3 (2 transport failures + 1 success)", fd.calls)
	}
	s := r.Stats()
	if s.Quarantined != 0 {
		t.Fatalf("transport faults caused quarantine:\n%s", r.Journal().Format())
	}
	if s.TransportRetries != 2 {
		t.Errorf("transport retries = %d, want 2", s.TransportRetries)
	}
	if s.Retries != 0 {
		t.Errorf("ordinary retries = %d, want 0 — transport errors must not land there", s.Retries)
	}
	var sawRetry bool
	for _, e := range r.Journal().Events() {
		if e.Type == EvTransportRetry {
			sawRetry = true
		}
		if e.Type == EvQuarantined {
			t.Error("journal records a quarantine")
		}
	}
	if !sawRetry {
		t.Error("journal missing transport-retry events")
	}
}

// When the device stays unreachable, the loop gives up after the bounded
// budget with an alert and parks the device as converged so the next
// sweep re-detects the still-standing drift — it does NOT quarantine.
func TestTransportGiveUpAwaitsNextSweep(t *testing.T) {
	w := newFakeWorld("d1")
	var alerts []string
	var mu sync.Mutex
	cfg := Config{
		BackoffBase: time.Second, MaxAttempts: 5, MaxCheckRetries: 2, DampingThreshold: -1,
		Alert: func(format string, args ...any) {
			mu.Lock()
			alerts = append(alerts, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}
	r, clk, _ := newTransportRec(w, cfg, 1000) // never reachable
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Hour)
	wantState(t, r, "d1", StateConverged)

	s := r.Stats()
	if s.Quarantined != 0 {
		t.Fatalf("unreachable device was quarantined:\n%s", r.Journal().Format())
	}
	if s.TransportRetries != 3 {
		t.Errorf("transport retries = %d, want 3 (budget 2 + the exhausting attempt)", s.TransportRetries)
	}
	var gaveUp bool
	for _, e := range r.Journal().Events() {
		if e.Type == EvTransportGiveUp {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatalf("journal missing transport-giveup:\n%s", r.Journal().Format())
	}
	mu.Lock()
	n := len(alerts)
	mu.Unlock()
	if n == 0 {
		t.Error("give-up should alert the operator")
	}

	// The drift is still standing; the next detection re-enters the loop
	// cleanly (give-up reset the transport budget, so the device is
	// re-admittable rather than stuck in a skipped state).
	r.HandleDeviation(monitor.Deviation{Device: "d1", Added: 1})
	wantState(t, r, "d1", StateBackoff)
}

// Ordinary (permanent) remediation failures still quarantine: the
// transport carve-out must not swallow real config rejections.
func TestPermanentDeployFailuresStillQuarantine(t *testing.T) {
	w := newFakeWorld("d1")
	w.deployFail["d1"] = 100 // "fake deploy failure": not a transport error
	r, clk := newTestRec(w, Config{BackoffBase: time.Second, MaxAttempts: 2, DampingThreshold: -1})
	driftAndNotify(w, r, "d1")
	clk.Advance(time.Minute)
	wantState(t, r, "d1", StateQuarantined)
	if s := r.Stats(); s.TransportRetries != 0 {
		t.Errorf("permanent failures counted as transport retries: %d", s.TransportRetries)
	}
}
