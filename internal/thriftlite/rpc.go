package thriftlite

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
)

// The RPC layer: a framed request/response protocol over TCP, modeled on
// Thrift's framed transport. Each frame is a 4-byte big-endian length
// followed by: message type byte, uvarint sequence id, length-prefixed
// method name, and the serialized payload. Replies carry either a payload
// (msgReply) or an error string (msgException).

const (
	msgCall      byte = 1
	msgReply     byte = 2
	msgException byte = 3
)

const maxFrameSize = 64 << 20 // 64 MiB; a config for an entire DC fits well within this

// ErrServerClosed is returned by Server.Serve after Shutdown.
var ErrServerClosed = errors.New("thriftlite: server closed")

// RemoteError is an application-level error returned by an RPC handler,
// distinguishable from transport failures.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc %s: %s", e.Method, e.Msg)
}

// Handler processes one request payload and returns a response payload.
type Handler func(req []byte) ([]byte, error)

// Server dispatches framed RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// Logf, if set, receives server diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewServer returns an empty server; register handlers before Serve.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for a method name. Registering a duplicate
// method panics: it is a programming error caught at startup.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("thriftlite: duplicate RPC method %q", method))
	}
	s.handlers[method] = h
}

// RegisterTyped installs a handler whose request and response are structs
// (de)serialized with this package's binary format.
func RegisterTyped[Req, Resp any](s *Server, method string, h func(*Req) (*Resp, error)) {
	s.Register(method, func(reqBytes []byte) ([]byte, error) {
		var req Req
		if err := Unmarshal(reqBytes, &req); err != nil {
			return nil, fmt.Errorf("decoding request: %w", err)
		}
		resp, err := h(&req)
		if err != nil {
			return nil, err
		}
		return Marshal(resp)
	})
}

// Serve accepts connections on ln until Shutdown is called.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.RLock()
			closed := s.closed
			s.mu.RUnlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown stops accepting connections, closes existing ones, and waits
// for in-flight handlers to return.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	var wmu sync.Mutex // serializes response frames from concurrent handlers
	for {
		frame, err := readFrame(r)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("thriftlite: read frame from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		mt, seq, method, payload, err := parseMessage(frame)
		if err != nil {
			s.logf("thriftlite: bad frame from %s: %v", conn.RemoteAddr(), err)
			return
		}
		if mt != msgCall {
			s.logf("thriftlite: unexpected message type %d from %s", mt, conn.RemoteAddr())
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.mu.RLock()
			h, ok := s.handlers[method]
			s.mu.RUnlock()
			var respType byte
			var respPayload []byte
			if !ok {
				respType = msgException
				respPayload = []byte(fmt.Sprintf("unknown method %q", method))
			} else if out, err := h(payload); err != nil {
				respType = msgException
				respPayload = []byte(err.Error())
			} else {
				respType = msgReply
				respPayload = out
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := writeMessage(conn, respType, seq, method, respPayload); err != nil {
				s.logf("thriftlite: write reply to %s: %v", conn.RemoteAddr(), err)
				conn.Close()
			}
		}()
	}
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("frame size %d exceeds limit %d", n, maxFrameSize)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

func parseMessage(frame []byte) (mt byte, seq uint64, method string, payload []byte, err error) {
	if len(frame) < 1 {
		return 0, 0, "", nil, fmt.Errorf("empty frame")
	}
	mt = frame[0]
	rest := frame[1:]
	seq, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, "", nil, fmt.Errorf("bad sequence id")
	}
	rest = rest[n:]
	mlen, n := binary.Uvarint(rest)
	if n <= 0 || mlen > uint64(len(rest)-n) {
		return 0, 0, "", nil, fmt.Errorf("bad method name length")
	}
	rest = rest[n:]
	method = string(rest[:mlen])
	payload = rest[mlen:]
	return mt, seq, method, payload, nil
}

func writeMessage(w io.Writer, mt byte, seq uint64, method string, payload []byte) error {
	var hdr []byte
	hdr = append(hdr, mt)
	hdr = binary.AppendUvarint(hdr, seq)
	hdr = binary.AppendUvarint(hdr, uint64(len(method)))
	hdr = append(hdr, method...)
	total := len(hdr) + len(payload)
	frame := make([]byte, 4, 4+total)
	binary.BigEndian.PutUint32(frame, uint32(total))
	frame = append(frame, hdr...)
	frame = append(frame, payload...)
	_, err := w.Write(frame)
	return err
}

// Client is a connection to one RPC server, safe for concurrent use.
// Responses are matched to requests by sequence id, so calls may be issued
// concurrently over the single connection.
type Client struct {
	conn net.Conn
	seq  atomic.Uint64

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	pending map[uint64]chan callResult
	err     error // terminal transport error, set once
}

type callResult struct {
	payload []byte
	err     error
}

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan callResult)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		frame, err := readFrame(r)
		if err != nil {
			c.fail(fmt.Errorf("thriftlite: connection lost: %w", err))
			return
		}
		mt, seq, method, payload, err := parseMessage(frame)
		if err != nil {
			c.fail(fmt.Errorf("thriftlite: bad reply frame: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[seq]
		delete(c.pending, seq)
		c.mu.Unlock()
		if !ok {
			continue // reply to a call that timed out
		}
		switch mt {
		case msgReply:
			ch <- callResult{payload: payload}
		case msgException:
			ch <- callResult{err: &RemoteError{Method: method, Msg: string(payload)}}
		default:
			ch <- callResult{err: fmt.Errorf("thriftlite: unexpected reply type %d", mt)}
		}
	}
}

// fail marks the client broken and unblocks all pending calls.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for seq, ch := range c.pending {
		ch <- callResult{err: c.err}
		delete(c.pending, seq)
	}
}

// Call issues a raw RPC and waits for the reply or context cancellation.
func (c *Client) Call(ctx context.Context, method string, payload []byte) ([]byte, error) {
	seq := c.seq.Add(1)
	ch := make(chan callResult, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[seq] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeMessage(c.conn, msgCall, seq, method, payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// CallTyped issues an RPC with struct request/response types.
func CallTyped[Req, Resp any](ctx context.Context, c *Client, method string, req *Req) (*Resp, error) {
	payload, err := Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encoding request: %w", err)
	}
	out, err := c.Call(ctx, method, payload)
	if err != nil {
		return nil, err
	}
	var resp Resp
	if err := Unmarshal(out, &resp); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &resp, nil
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("thriftlite: client closed"))
	return err
}
