// Package thriftlite is a compact, Thrift-inspired binary serialization
// format and RPC framework.
//
// Robotron stores per-device configuration data as Thrift objects
// (SIGCOMM '16, §5.2, Fig. 8) and exposes FBNet's read/write APIs as
// language-independent Thrift RPCs (§4.3.2). Apache Thrift is not available
// in an offline, stdlib-only build, so this package re-implements the two
// properties the system depends on: (1) schema'd, field-id-tagged binary
// struct encoding that tolerates schema evolution (unknown fields are
// skipped, missing fields keep zero values), and (2) a framed
// request/response RPC transport over TCP.
//
// Go structs map to wire structs via `thrift:"N"` field tags carrying the
// field id. Supported field types: bool, integers, float64, string, []byte,
// nested structs, pointers to structs, slices, and maps with string keys.
package thriftlite

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
)

// Wire type codes. STOP terminates a struct's field list.
const (
	tStop   byte = 0
	tBool   byte = 1
	tI64    byte = 2
	tDouble byte = 3
	tString byte = 4 // also []byte
	tStruct byte = 5
	tList   byte = 6
	tMap    byte = 7
)

// Marshal serializes v (a struct or pointer to struct) into the compact
// binary format.
func Marshal(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("thriftlite: cannot marshal nil pointer")
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("thriftlite: top-level value must be a struct, got %s", rv.Kind())
	}
	e := &encoder{}
	if err := e.writeStruct(rv); err != nil {
		return nil, err
	}
	return e.buf, nil
}

type encoder struct {
	buf []byte
}

func (e *encoder) writeByte(b byte) { e.buf = append(e.buf, b) }
func (e *encoder) writeUvarint(u uint64) {
	e.buf = binary.AppendUvarint(e.buf, u)
}
func (e *encoder) writeVarint(i int64) {
	e.buf = binary.AppendVarint(e.buf, i)
}

func (e *encoder) writeStruct(rv reflect.Value) error {
	fields, err := structFields(rv.Type())
	if err != nil {
		return err
	}
	for _, f := range fields {
		fv := rv.Field(f.index)
		if isZeroValue(fv) {
			continue // compact encoding: zero values are elided
		}
		wt, err := wireType(fv.Type())
		if err != nil {
			return fmt.Errorf("field %s: %w", rv.Type().Field(f.index).Name, err)
		}
		e.writeByte(wt)
		e.writeUvarint(uint64(f.id))
		if err := e.writeValue(fv, wt); err != nil {
			return fmt.Errorf("field %s: %w", rv.Type().Field(f.index).Name, err)
		}
	}
	e.writeByte(tStop)
	return nil
}

func (e *encoder) writeValue(rv reflect.Value, wt byte) error {
	switch wt {
	case tBool:
		if rv.Bool() {
			e.writeByte(1)
		} else {
			e.writeByte(0)
		}
	case tI64:
		switch rv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			e.writeVarint(int64(rv.Uint()))
		default:
			e.writeVarint(rv.Int())
		}
	case tDouble:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(rv.Float()))
		e.buf = append(e.buf, b[:]...)
	case tString:
		var s []byte
		if rv.Kind() == reflect.String {
			s = []byte(rv.String())
		} else {
			s = rv.Bytes()
		}
		e.writeUvarint(uint64(len(s)))
		e.buf = append(e.buf, s...)
	case tStruct:
		for rv.Kind() == reflect.Pointer {
			rv = rv.Elem()
		}
		return e.writeStruct(rv)
	case tList:
		elemWT, err := wireType(rv.Type().Elem())
		if err != nil {
			return err
		}
		e.writeByte(elemWT)
		e.writeUvarint(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			ev := rv.Index(i)
			if elemWT == tStruct && ev.Kind() == reflect.Pointer && ev.IsNil() {
				return fmt.Errorf("nil struct pointer at list index %d", i)
			}
			if err := e.writeValue(ev, elemWT); err != nil {
				return err
			}
		}
	case tMap:
		valWT, err := wireType(rv.Type().Elem())
		if err != nil {
			return err
		}
		e.writeByte(valWT)
		e.writeUvarint(uint64(rv.Len()))
		keys := rv.MapKeys()
		sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
		for _, k := range keys {
			e.writeUvarint(uint64(len(k.String())))
			e.buf = append(e.buf, k.String()...)
			if err := e.writeValue(rv.MapIndex(k), valWT); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unsupported wire type %d", wt)
	}
	return nil
}

// wireType maps a Go type to its wire type code.
func wireType(t reflect.Type) (byte, error) {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Bool:
		return tBool, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return tI64, nil
	case reflect.Float32, reflect.Float64:
		return tDouble, nil
	case reflect.String:
		return tString, nil
	case reflect.Struct:
		return tStruct, nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return tString, nil // []byte
		}
		return tList, nil
	case reflect.Map:
		if t.Key().Kind() != reflect.String {
			return 0, fmt.Errorf("map keys must be strings, got %s", t.Key())
		}
		return tMap, nil
	}
	return 0, fmt.Errorf("unsupported Go type %s", t)
}

func isZeroValue(rv reflect.Value) bool {
	switch rv.Kind() {
	case reflect.Slice, reflect.Map:
		return rv.Len() == 0
	case reflect.Pointer, reflect.Interface:
		return rv.IsNil()
	default:
		return rv.IsZero()
	}
}

// field describes one serializable struct field.
type field struct {
	id    int
	index int
}

// structFields extracts tagged fields, sorted by id, validating uniqueness.
// Fields without a thrift tag are ignored, allowing internal bookkeeping
// fields alongside wire fields.
func structFields(t reflect.Type) ([]field, error) {
	var out []field
	seen := map[int]string{}
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		tag := sf.Tag.Get("thrift")
		if tag == "" || tag == "-" || !sf.IsExported() {
			continue
		}
		id, err := strconv.Atoi(tag)
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("thriftlite: bad field tag %q on %s.%s (want positive integer)", tag, t.Name(), sf.Name)
		}
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("thriftlite: duplicate field id %d on %s (%s and %s)", id, t.Name(), prev, sf.Name)
		}
		seen[id] = sf.Name
		out = append(out, field{id: id, index: i})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out, nil
}
