package thriftlite

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
)

// Unmarshal deserializes data into v, which must be a non-nil pointer to a
// struct. Unknown field ids are skipped (forward compatibility); fields
// absent from the data retain their zero values (backward compatibility).
func Unmarshal(data []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("thriftlite: Unmarshal target must be a non-nil pointer")
	}
	rv = rv.Elem()
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("thriftlite: Unmarshal target must point to a struct, got %s", rv.Kind())
	}
	d := &decoder{buf: data}
	if err := d.readStruct(rv); err != nil {
		return err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("thriftlite: %d trailing bytes after struct", len(d.buf)-d.pos)
	}
	return nil
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) readByte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("thriftlite: unexpected end of data")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) readUvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("thriftlite: bad uvarint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *decoder) readVarint() (int64, error) {
	i, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("thriftlite: bad varint at offset %d", d.pos)
	}
	d.pos += n
	return i, nil
}

func (d *decoder) readBytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("thriftlite: length %d exceeds remaining data %d", n, len(d.buf)-d.pos)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

func (d *decoder) readStruct(rv reflect.Value) error {
	fields, err := structFields(rv.Type())
	if err != nil {
		return err
	}
	byID := make(map[int]int, len(fields))
	for _, f := range fields {
		byID[f.id] = f.index
	}
	for {
		wt, err := d.readByte()
		if err != nil {
			return err
		}
		if wt == tStop {
			return nil
		}
		id, err := d.readUvarint()
		if err != nil {
			return err
		}
		idx, known := byID[int(id)]
		if !known {
			if err := d.skipValue(wt); err != nil {
				return err
			}
			continue
		}
		fv := rv.Field(idx)
		declared, err := wireType(fv.Type())
		if err != nil {
			return err
		}
		if declared != wt {
			return fmt.Errorf("thriftlite: field id %d of %s: wire type %d does not match declared type %s",
				id, rv.Type().Name(), wt, fv.Type())
		}
		if err := d.readValue(fv, wt); err != nil {
			return fmt.Errorf("field id %d of %s: %w", id, rv.Type().Name(), err)
		}
	}
}

func (d *decoder) readValue(fv reflect.Value, wt byte) error {
	switch wt {
	case tBool:
		b, err := d.readByte()
		if err != nil {
			return err
		}
		fv.SetBool(b != 0)
	case tI64:
		i, err := d.readVarint()
		if err != nil {
			return err
		}
		switch fv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(uint64(i))
		default:
			if fv.OverflowInt(i) {
				return fmt.Errorf("value %d overflows %s", i, fv.Type())
			}
			fv.SetInt(i)
		}
	case tDouble:
		b, err := d.readBytes(8)
		if err != nil {
			return err
		}
		fv.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case tString:
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		b, err := d.readBytes(n)
		if err != nil {
			return err
		}
		if fv.Kind() == reflect.String {
			fv.SetString(string(b))
		} else {
			fv.SetBytes(append([]byte(nil), b...))
		}
	case tStruct:
		for fv.Kind() == reflect.Pointer {
			if fv.IsNil() {
				fv.Set(reflect.New(fv.Type().Elem()))
			}
			fv = fv.Elem()
		}
		return d.readStruct(fv)
	case tList:
		elemWT, err := d.readByte()
		if err != nil {
			return err
		}
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		declared, err := wireType(fv.Type().Elem())
		if err != nil {
			return err
		}
		if declared != elemWT {
			return fmt.Errorf("list element wire type %d does not match declared %s", elemWT, fv.Type().Elem())
		}
		sl := reflect.MakeSlice(fv.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			ev := sl.Index(i)
			if ev.Kind() == reflect.Pointer {
				ev.Set(reflect.New(ev.Type().Elem()))
			}
			if err := d.readValue(ev, elemWT); err != nil {
				return err
			}
		}
		fv.Set(sl)
	case tMap:
		valWT, err := d.readByte()
		if err != nil {
			return err
		}
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		declared, err := wireType(fv.Type().Elem())
		if err != nil {
			return err
		}
		if declared != valWT {
			return fmt.Errorf("map value wire type %d does not match declared %s", valWT, fv.Type().Elem())
		}
		m := reflect.MakeMapWithSize(fv.Type(), int(n))
		for i := 0; i < int(n); i++ {
			klen, err := d.readUvarint()
			if err != nil {
				return err
			}
			kb, err := d.readBytes(klen)
			if err != nil {
				return err
			}
			vv := reflect.New(fv.Type().Elem()).Elem()
			if vv.Kind() == reflect.Pointer {
				vv.Set(reflect.New(vv.Type().Elem()))
			}
			if err := d.readValue(vv, valWT); err != nil {
				return err
			}
			m.SetMapIndex(reflect.ValueOf(string(kb)).Convert(fv.Type().Key()), vv)
		}
		fv.Set(m)
	default:
		return fmt.Errorf("unsupported wire type %d", wt)
	}
	return nil
}

// skipValue discards a value of the given wire type, used for unknown
// field ids during schema evolution.
func (d *decoder) skipValue(wt byte) error {
	switch wt {
	case tBool:
		_, err := d.readByte()
		return err
	case tI64:
		_, err := d.readVarint()
		return err
	case tDouble:
		_, err := d.readBytes(8)
		return err
	case tString:
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		_, err = d.readBytes(n)
		return err
	case tStruct:
		for {
			fwt, err := d.readByte()
			if err != nil {
				return err
			}
			if fwt == tStop {
				return nil
			}
			if _, err := d.readUvarint(); err != nil {
				return err
			}
			if err := d.skipValue(fwt); err != nil {
				return err
			}
		}
	case tList:
		elemWT, err := d.readByte()
		if err != nil {
			return err
		}
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		for i := 0; i < int(n); i++ {
			if err := d.skipValue(elemWT); err != nil {
				return err
			}
		}
		return nil
	case tMap:
		valWT, err := d.readByte()
		if err != nil {
			return err
		}
		n, err := d.readUvarint()
		if err != nil {
			return err
		}
		for i := 0; i < int(n); i++ {
			klen, err := d.readUvarint()
			if err != nil {
				return err
			}
			if _, err := d.readBytes(klen); err != nil {
				return err
			}
			if err := d.skipValue(valWT); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("cannot skip unknown wire type %d", wt)
}
