package thriftlite

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// The Fig. 8 schema from the paper, expressed with thriftlite tags.
type testPif struct {
	Name string `thrift:"1"`
}

type testAgg struct {
	Name     string    `thrift:"1"`
	Number   int32     `thrift:"2"`
	V4Prefix string    `thrift:"3"`
	V6Prefix string    `thrift:"4"`
	Pifs     []testPif `thrift:"5"`
}

type testDevice struct {
	Aggs []testAgg `thrift:"1"`
}

func roundTrip[T any](t *testing.T, in *T) *T {
	t.Helper()
	data, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out := new(T)
	if err := Unmarshal(data, out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	return out
}

func TestRoundTripFig8Device(t *testing.T) {
	in := &testDevice{
		Aggs: []testAgg{
			{
				Name:     "ae0",
				Number:   0,
				V4Prefix: "10.128.0.0/31",
				V6Prefix: "2401:db00::/127",
				Pifs:     []testPif{{Name: "et1/1"}, {Name: "et2/1"}},
			},
			{Name: "ae1", Number: 1, Pifs: []testPif{{Name: "et3/1"}}},
		},
	}
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", in, out)
	}
}

type allTypes struct {
	B   bool              `thrift:"1"`
	I   int64             `thrift:"2"`
	I32 int32             `thrift:"3"`
	U   uint32            `thrift:"4"`
	F   float64           `thrift:"5"`
	S   string            `thrift:"6"`
	Bs  []byte            `thrift:"7"`
	L   []string          `thrift:"8"`
	LI  []int64           `thrift:"9"`
	M   map[string]string `thrift:"10"`
	MI  map[string]int64  `thrift:"11"`
	Sub *testPif          `thrift:"12"`
	Skp string            // untagged: not serialized
}

func TestRoundTripAllTypes(t *testing.T) {
	in := &allTypes{
		B: true, I: -12345678901234, I32: -7, U: 42, F: 3.14159,
		S: "hello", Bs: []byte{0, 1, 255},
		L: []string{"a", "", "c"}, LI: []int64{-1, 0, math.MaxInt64},
		M:   map[string]string{"k1": "v1", "k2": ""},
		MI:  map[string]int64{"n": -9},
		Sub: &testPif{Name: "sub"},
		Skp: "not serialized",
	}
	out := roundTrip(t, in)
	in.Skp = ""
	// Empty-string map values survive; nil vs empty slices normalize to equal content.
	if out.M["k2"] != "" {
		t.Errorf("map empty value lost")
	}
	if !reflect.DeepEqual(in.L, out.L) || !reflect.DeepEqual(in.LI, out.LI) {
		t.Errorf("list mismatch: %+v vs %+v", in, out)
	}
	if out.Sub == nil || out.Sub.Name != "sub" {
		t.Errorf("nested struct mismatch: %+v", out.Sub)
	}
	if out.B != in.B || out.I != in.I || out.I32 != in.I32 || out.U != in.U || out.F != in.F || out.S != in.S {
		t.Errorf("scalar mismatch: %+v vs %+v", in, out)
	}
	if !bytes.Equal(out.Bs, in.Bs) {
		t.Errorf("bytes mismatch: %v vs %v", out.Bs, in.Bs)
	}
	if out.Skp != "" {
		t.Errorf("untagged field was serialized: %q", out.Skp)
	}
}

func TestZeroValuesElided(t *testing.T) {
	data, err := Marshal(&testAgg{})
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1 || data[0] != tStop {
		t.Errorf("zero struct should encode to a single STOP byte, got %v", data)
	}
}

// Schema evolution: a reader with fewer fields skips unknown ones.
type testAggV1 struct {
	Name string `thrift:"1"`
}

func TestForwardCompatibilitySkipsUnknownFields(t *testing.T) {
	data, err := Marshal(&testAgg{Name: "ae0", Number: 3, V4Prefix: "10.0.0.0/31",
		Pifs: []testPif{{Name: "et1/1"}}})
	if err != nil {
		t.Fatal(err)
	}
	var old testAggV1
	if err := Unmarshal(data, &old); err != nil {
		t.Fatalf("old reader failed on new data: %v", err)
	}
	if old.Name != "ae0" {
		t.Errorf("old reader got name %q", old.Name)
	}
}

func TestBackwardCompatibilityMissingFieldsZero(t *testing.T) {
	data, err := Marshal(&testAggV1{Name: "ae0"})
	if err != nil {
		t.Fatal(err)
	}
	var cur testAgg
	if err := Unmarshal(data, &cur); err != nil {
		t.Fatalf("new reader failed on old data: %v", err)
	}
	if cur.Name != "ae0" || cur.Number != 0 || cur.Pifs != nil {
		t.Errorf("unexpected decode: %+v", cur)
	}
}

type badDupTag struct {
	A string `thrift:"1"`
	B string `thrift:"1"`
}

type badTag struct {
	A string `thrift:"zero"`
}

func TestBadTagsRejected(t *testing.T) {
	if _, err := Marshal(&badDupTag{A: "x", B: "y"}); err == nil {
		t.Error("duplicate field ids should be rejected")
	}
	if _, err := Marshal(&badTag{A: "x"}); err == nil {
		t.Error("non-numeric field tag should be rejected")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v testAgg
	if err := Unmarshal(nil, &v); err == nil {
		t.Error("empty data should error (missing STOP)")
	}
	if err := Unmarshal([]byte{tStop}, nil); err == nil {
		t.Error("nil target should error")
	}
	var notPtr testAgg
	if err := Unmarshal([]byte{tStop}, notPtr); err == nil {
		t.Error("non-pointer target should error")
	}
	// Truncated string length.
	if err := Unmarshal([]byte{tString, 1, 200}, &v); err == nil {
		t.Error("truncated data should error")
	}
	// Trailing garbage.
	if err := Unmarshal([]byte{tStop, 99}, &v); err == nil {
		t.Error("trailing bytes should error")
	}
	// Wire type mismatch: field 1 of testAgg is string, encode as bool.
	if err := Unmarshal([]byte{tBool, 1, 1, tStop}, &v); err == nil {
		t.Error("wire type mismatch should error")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary payloads.
type quickMsg struct {
	A string           `thrift:"1"`
	B int64            `thrift:"2"`
	C bool             `thrift:"3"`
	D []string         `thrift:"4"`
	E map[string]int64 `thrift:"5"`
	F float64          `thrift:"6"`
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(a string, b int64, c bool, d []string, ks []string, vs []int64, fl float64) bool {
		in := &quickMsg{A: a, B: b, C: c, D: d, F: fl}
		if len(ks) > 0 {
			in.E = map[string]int64{}
			for i, k := range ks {
				if i < len(vs) {
					in.E[k] = vs[i]
				}
			}
		}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out quickMsg
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		if out.A != in.A || out.B != in.B || out.C != in.C {
			return false
		}
		if math.IsNaN(fl) {
			if !math.IsNaN(out.F) {
				return false
			}
		} else if out.F != in.F {
			return false
		}
		if len(out.D) != len(in.D) {
			return false
		}
		for i := range in.D {
			if out.D[i] != in.D[i] {
				return false
			}
		}
		if len(out.E) != len(in.E) {
			return false
		}
		for k, v := range in.E {
			if out.E[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var v allTypes
		_ = Unmarshal(data, &v) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// --- RPC tests ---

type echoReq struct {
	Msg string `thrift:"1"`
	N   int64  `thrift:"2"`
}

type echoResp struct {
	Msg string `thrift:"1"`
	N   int64  `thrift:"2"`
}

func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Logf = t.Logf
	RegisterTyped(s, "echo", func(req *echoReq) (*echoResp, error) {
		return &echoResp{Msg: req.Msg, N: req.N + 1}, nil
	})
	RegisterTyped(s, "fail", func(req *echoReq) (*echoResp, error) {
		return nil, errors.New("handler exploded")
	})
	RegisterTyped(s, "slow", func(req *echoReq) (*echoResp, error) {
		time.Sleep(200 * time.Millisecond)
		return &echoResp{Msg: "late"}, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(s.Shutdown)
	return s, ln.Addr().String()
}

func TestRPCEcho(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := CallTyped[echoReq, echoResp](context.Background(), c, "echo", &echoReq{Msg: "hi", N: 41})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hi" || resp.N != 42 {
		t.Errorf("echo returned %+v", resp)
	}
}

func TestRPCHandlerError(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = CallTyped[echoReq, echoResp](context.Background(), c, "fail", &echoReq{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !strings.Contains(re.Msg, "handler exploded") {
		t.Errorf("remote error message = %q", re.Msg)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), "nope", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError for unknown method, got %v", err)
	}
}

func TestRPCContextTimeout(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = CallTyped[echoReq, echoResp](ctx, c, "slow", &echoReq{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want DeadlineExceeded, got %v", err)
	}
	// The connection must remain usable after a timed-out call.
	resp, err := CallTyped[echoReq, echoResp](context.Background(), c, "echo", &echoReq{N: 1})
	if err != nil || resp.N != 2 {
		t.Errorf("connection unusable after timeout: %v %+v", err, resp)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, err := CallTyped[echoReq, echoResp](context.Background(), c, "echo", &echoReq{N: int64(i)})
			if err == nil && resp.N != int64(i)+1 {
				err = errors.New("response mismatch: concurrent replies crossed")
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRPCServerShutdownFailsPendingCalls(t *testing.T) {
	s, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := CallTyped[echoReq, echoResp](context.Background(), c, "slow", &echoReq{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	s.Shutdown()
	select {
	case err := <-done:
		if err == nil {
			t.Error("call should fail after server shutdown")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call did not unblock after shutdown")
	}
	// Subsequent calls fail fast.
	if _, err := c.Call(context.Background(), "echo", nil); err == nil {
		t.Error("call on broken client should fail")
	}
}

func BenchmarkMarshalDevice(b *testing.B) {
	dev := &testDevice{}
	for i := 0; i < 48; i++ {
		dev.Aggs = append(dev.Aggs, testAgg{
			Name: "ae0", Number: int32(i), V4Prefix: "10.0.0.0/31", V6Prefix: "2401:db00::/127",
			Pifs: []testPif{{Name: "et1/1"}, {Name: "et1/2"}},
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalDevice(b *testing.B) {
	dev := &testDevice{}
	for i := 0; i < 48; i++ {
		dev.Aggs = append(dev.Aggs, testAgg{
			Name: "ae0", Number: int32(i), V4Prefix: "10.0.0.0/31",
			Pifs: []testPif{{Name: "et1/1"}, {Name: "et1/2"}},
		})
	}
	data, err := Marshal(dev)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out testDevice
		if err := Unmarshal(data, &out); err != nil {
			b.Fatal(err)
		}
	}
}
