// Package core assembles Robotron's subsystems into the top-down
// management life cycle of SIGCOMM '16, §3 and §5: network design → config
// generation → deployment → monitoring, all grounded in FBNet as the
// single source of truth.
//
// A Robotron instance owns one FBNet store, the design tools, the config
// generator and repository, the deployment engine, the monitoring
// pipelines, and (in this reproduction) the simulated device fleet the
// network runs on. The examples and the CLI drive this API.
package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/robotron-net/robotron/internal/audit"
	"github.com/robotron-net/robotron/internal/configgen"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/netsim"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/relstore"
	"github.com/robotron-net/robotron/internal/revctl"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/vclock"
	"github.com/robotron-net/robotron/internal/verify"
)

// Robotron is the assembled system.
type Robotron struct {
	Store      *fbnet.Store
	Designer   *design.Designer
	Generator  *configgen.Generator
	Repo       *revctl.Repo
	Fleet      *netsim.Fleet
	Deployer   *deploy.Deployer
	JobManager *monitor.JobManager
	Classifier *monitor.Classifier
	ConfigMon  *monitor.ConfigMonitor
	Timeseries *monitor.TimeseriesBackend

	// Reconciler is the closed-loop drift controller; nil unless
	// Options.EnableReconciler was set.
	Reconciler *reconcile.Reconciler

	// Alarms evaluates the intent-derived alarm rules over collected
	// data and assembles the operational timeline; nil only when
	// Options.EnableAlarms was explicitly false.
	Alarms *monitor.AlarmEngine

	// Verifier is the pre-deploy intent verification gate; VerifyIntent
	// controls whether GenerateAndDeploy/ProvisionCluster run it before
	// opening any management session.
	Verifier     *verify.Checker
	VerifyIntent bool

	// Telemetry is the shared metrics registry every subsystem reports
	// into; Tracer collects pipeline traces (one root span per
	// GenerateAndDeploy / ProvisionCluster). Both are always non-nil.
	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer

	// DeployParallelism bounds concurrent per-phase device commits in
	// the deployment engine; 0 uses the engine default (min(8, phase)).
	DeployParallelism int

	// GenerateParallelism bounds concurrent config generation in the
	// generator's worker pool; 0 uses the generator default (min(8, n)).
	GenerateParallelism int

	// DeployRetry, when non-nil, is the default transport-retry policy
	// for deployments driven through this instance (GenerateAndDeploy
	// and reconciler remediations); explicit deploy.Options.Retry wins.
	DeployRetry *deploy.RetryPolicy

	// Logf receives progress output; nil silences it.
	Logf func(format string, args ...any)

	// clock is the override from Options.Clock; nil means wall clock.
	clock vclock.Clock
}

// Options configure construction.
type Options struct {
	// DBName names the master database server.
	DBName string
	// Pools overrides the default address pools.
	Pools *design.Pools
	// Logf receives progress output.
	Logf func(format string, args ...any)
	// Store attaches to an existing FBNet store (e.g. a service
	// deployment's master) instead of creating a fresh one.
	Store *fbnet.Store
	// DeployParallelism bounds concurrent per-phase device commits for
	// deployments driven through this instance; 0 uses the engine
	// default (min(8, phase size)).
	DeployParallelism int
	// GenerateParallelism bounds concurrent config generation; 0 uses
	// the generator default (min(8, device count)).
	GenerateParallelism int
	// EnableReconciler turns on the closed-loop drift reconciler: every
	// deviation config monitoring detects is remediated automatically
	// (regenerate golden, redeploy with commit-confirm) under the safety
	// machinery configured by Reconcile.
	EnableReconciler bool
	// Reconcile tunes the reconciler (safety budget, flap damping,
	// backoff, rate limit); the zero value selects the package defaults.
	// Alert defaults to Logf when unset.
	Reconcile reconcile.Config
	// Telemetry attaches the instance to an existing metrics registry
	// (e.g. one shared with a service deployment); nil creates a private
	// one. All subsystems are instrumented either way.
	Telemetry *telemetry.Registry
	// TraceRing caps how many completed pipeline traces the tracer
	// retains for /traces; 0 uses telemetry.DefaultTraceRing.
	TraceRing int
	// FaultPolicy, when non-nil, arms deterministic fault injection on
	// every simulated device (present and future) and instruments the
	// injected-fault counters on the registry. Chaos tests construct a
	// policy, add rules, and pass it here.
	FaultPolicy *netsim.FaultPolicy
	// DeployRetry, when non-nil, becomes the default transport-retry
	// policy for GenerateAndDeploy and reconciler remediations. Without
	// it, commits are single-shot and any injected fault fails the
	// device's deployment.
	DeployRetry *deploy.RetryPolicy
	// EnableAlarms controls the intent-derived alarm engine: collection
	// jobs and alarm rules are re-derived from FBNet after every
	// provisioning or deployment, collected data is evaluated against
	// them, and firing alarms are correlated with the operational
	// timeline. nil means ON; pass an explicit false to opt out.
	EnableAlarms *bool
	// Clock, when non-nil, becomes the time source for the whole
	// instance: device syslog/counter timestamps, collection stamps,
	// audit events, the reconciler, and alarm evaluation. Simulations
	// pass a VirtualClock for deterministic, byte-identical runs; nil
	// keeps the wall clock.
	Clock vclock.Clock
	// VerifyIntent controls the pre-deploy verification gate that checks
	// network-wide invariants (BGP symmetry, p2p subnet consistency,
	// reachability, orphan references) over the candidate configs before
	// any device is touched. nil means ON — bypassing the gate is the
	// exceptional case (the CLI's -no-verify), so it takes an explicit
	// false.
	VerifyIntent *bool
}

// New builds a complete Robotron instance over fresh state.
func New(opts Options) (*Robotron, error) {
	if opts.DBName == "" {
		opts.DBName = "fbnet-master"
	}
	store := opts.Store
	if store == nil {
		db := relstore.NewDB(opts.DBName)
		var err error
		store, err = fbnet.Open(db, fbnet.NewCatalog())
		if err != nil {
			return nil, err
		}
	}
	pools := design.DefaultPools()
	if opts.Pools != nil {
		pools = *opts.Pools
	}
	designer, err := design.NewDesigner(store, pools)
	if err != nil {
		return nil, err
	}
	if err := designer.EnsureStandardHardware(); err != nil {
		return nil, err
	}
	repo := revctl.NewRepo()
	gen, err := configgen.NewGenerator(store, repo)
	if err != nil {
		return nil, err
	}
	fleet := netsim.NewFleet()
	if opts.FaultPolicy != nil {
		fleet.SetFaultPolicy(opts.FaultPolicy)
	}
	jm := monitor.NewJobManager(monitor.FleetDeviceResolver(fleet))
	jm.SetDeviceLister(func() []string { return monitor.SortedDeviceNames(fleet) })
	if opts.Clock != nil {
		jm.SetClock(opts.Clock)
	}
	ts := monitor.NewTimeseriesBackend()
	for _, b := range []monitor.Backend{ts, monitor.NewDerivedBackend(store), monitor.NewConfigBackend(repo)} {
		if err := jm.RegisterBackend(b); err != nil {
			return nil, err
		}
	}
	cls := monitor.NewClassifier()
	monitor.StandardRules(cls)
	monitor.RecordEvents(cls, store)
	cm := monitor.NewConfigMonitor(jm, repo, store, gen.Golden)
	cm.Attach(cls)
	// Event-driven collection: a link or BGP state alert triggers an
	// immediate targeted poll of the reporting device, so Derived models
	// converge on the event rather than the next periodic cycle (the
	// ad-hoc job path of §5.4.2).
	cls.OnAlert(func(a monitor.Alert) {
		var data monitor.DataType
		switch a.Rule {
		case "link-state":
			data = monitor.DataInterfaces
		case "bgp-updown":
			data = monitor.DataBGP
		default:
			return
		}
		_, _ = jm.RunOnce(monitor.JobSpec{
			Name: "adhoc-event-" + a.Message.Host, Period: time.Second,
			Engine: monitor.EngineCLI, Data: data,
			Devices: []string{a.Message.Host}, Backends: []string{"fbnet-derived"},
		})
	})
	deployer := deploy.NewDeployer(deploy.FleetResolver(fleet))
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracer := telemetry.NewTracer(opts.TraceRing)
	reg.Help("robotron_traces_started_total", "pipeline traces started")
	tracer.SetStartedCounter(reg.Counter("robotron_traces_started_total"))
	store.Instrument(reg)
	gen.Instrument(reg)
	if opts.FaultPolicy != nil {
		opts.FaultPolicy.Instrument(reg)
	}
	deployer.Instrument(reg)
	cm.Instrument(reg)
	jm.Instrument(reg)
	verifier := verify.NewChecker(store, gen.Golden)
	verifier.Instrument(reg)
	var alarms *monitor.AlarmEngine
	if opts.EnableAlarms == nil || *opts.EnableAlarms {
		alarms = monitor.NewAlarmEngine(opts.Clock, ts, store)
		alarms.Instrument(reg)
		alarms.Subscribe(cls)
	}
	r := &Robotron{
		Store:      store,
		Designer:   designer,
		Generator:  gen,
		Repo:       repo,
		Fleet:      fleet,
		Deployer:   deployer,
		JobManager: jm,
		Classifier: cls,
		ConfigMon:  cm,
		Timeseries: ts,

		Telemetry: reg,
		Tracer:    tracer,

		Verifier:     verifier,
		VerifyIntent: opts.VerifyIntent == nil || *opts.VerifyIntent,

		Alarms: alarms,
		clock:  opts.Clock,

		DeployParallelism:   opts.DeployParallelism,
		GenerateParallelism: opts.GenerateParallelism,
		DeployRetry:         opts.DeployRetry,

		Logf: opts.Logf,
	}
	if opts.EnableReconciler {
		rc := opts.Reconcile
		if rc.Alert == nil {
			rc.Alert = opts.Logf
		}
		if rc.Clock == nil {
			rc.Clock = opts.Clock
		}
		if rc.DeployRetry == nil {
			rc.DeployRetry = opts.DeployRetry
		}
		// Failure domains: a device's shard is its simulated site, so a
		// drift storm in one site trips only that site's breaker. The
		// per-site fleet counts back the per-shard fractional budget and
		// are memoized until the fleet size changes.
		siteOf := func(device string) string {
			if d, ok := fleet.Device(device); ok {
				return d.Site()
			}
			return ""
		}
		var shardSizes struct {
			sync.Mutex
			fleetLen int
			bySite   map[string]int
		}
		shardFleetSize := func(shard string) int {
			devs := fleet.Devices()
			shardSizes.Lock()
			defer shardSizes.Unlock()
			if shardSizes.bySite == nil || shardSizes.fleetLen != len(devs) {
				bySite := make(map[string]int)
				for _, d := range devs {
					s := d.Site()
					if s == "" {
						s = reconcile.DeriveShard(d.Name())
					}
					bySite[s]++
				}
				shardSizes.bySite, shardSizes.fleetLen = bySite, len(devs)
			}
			return shardSizes.bySite[shard]
		}
		rec := reconcile.New(reconcile.Deps{
			Golden:         gen,
			Deployer:       deployer,
			Checker:        cm,
			FleetSize:      func() int { return len(fleet.Devices()) },
			SweepList:      func() []string { return monitor.SortedDeviceNames(fleet) },
			SiteOf:         siteOf,
			ShardFleetSize: shardFleetSize,
		}, rc)
		cm.OnDeviation(rec.HandleDeviation)
		cm.OnCheckError(rec.HandleCheckError)
		rec.Instrument(reg)
		rec.Start()
		r.Reconciler = rec
		if alarms != nil {
			alarms.SetJournalSource(func() []monitor.JournalEntry {
				evs := rec.Journal().Events()
				out := make([]monitor.JournalEntry, len(evs))
				for i, ev := range evs {
					out[i] = monitor.JournalEntry{
						At: ev.At, Device: ev.Device,
						Type: string(ev.Type), Detail: ev.Detail,
					}
				}
				return out
			})
		}
	}
	return r, nil
}

// ServeMetrics starts the observability HTTP endpoint on addr
// (":9090", "127.0.0.1:0", ...): /metrics in Prometheus text format,
// /traces as JSON, /healthz with the registered health checks. Close
// the returned server to stop it.
func (r *Robotron) ServeMetrics(addr string) (*telemetry.Server, error) {
	return telemetry.ListenAndServeWith(addr, r.Telemetry, r.Tracer, r.obsHandlers())
}

// obsHandlers exposes the optional engines beside /metrics: /alarms is
// the full alarm snapshot (lifecycle states + correlations), /timeline
// the merged operational stream, /reconcile the reconciler's per-shard
// breaker/budget snapshot — each only when its engine is enabled.
func (r *Robotron) obsHandlers() []telemetry.ExtraHandler {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	var hs []telemetry.ExtraHandler
	if r.Alarms != nil {
		hs = append(hs,
			telemetry.ExtraHandler{Pattern: "/alarms", Handler: func(w http.ResponseWriter, _ *http.Request) {
				alarms := r.Alarms.Snapshot()
				if alarms == nil {
					alarms = []monitor.Alarm{}
				}
				writeJSON(w, alarms)
			}},
			telemetry.ExtraHandler{Pattern: "/timeline", Handler: func(w http.ResponseWriter, _ *http.Request) {
				tl := r.Alarms.Timeline(time.Time{}, time.Time{})
				if tl == nil {
					tl = []monitor.TimelineEntry{}
				}
				writeJSON(w, tl)
			}},
		)
	}
	if r.Reconciler != nil {
		hs = append(hs,
			telemetry.ExtraHandler{Pattern: "/reconcile", Handler: func(w http.ResponseWriter, _ *http.Request) {
				writeJSON(w, r.Reconciler.Snapshot())
			}},
		)
	}
	return hs
}

func (r *Robotron) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// now is the instance's time source: Options.Clock when provided, else
// the wall clock.
func (r *Robotron) now() time.Time {
	if r.clock != nil {
		return r.clock.Now()
	}
	return time.Now()
}

// vendorOf resolves a device's netsim vendor personality from its FBNet
// hardware profile.
func (r *Robotron) vendorOf(dev fbnet.Object) (netsim.Vendor, error) {
	hw, err := r.Store.GetByID("HardwareProfile", dev.Ref("hw_profile"))
	if err != nil {
		return "", err
	}
	vendor, err := r.Store.GetByID("Vendor", hw.Ref("vendor"))
	if err != nil {
		return "", err
	}
	switch vendor.String("syntax") {
	case "vendor2":
		return netsim.Vendor2, nil
	default:
		return netsim.Vendor1, nil
	}
}

// SyncFleet materializes the physical network implied by FBNet Desired
// state into the simulator: devices exist, cables follow circuits, and
// every device logs to the classifier. Idempotent. In production this is
// the part of the world Robotron does NOT control — racking and cabling —
// which is why design changes and deployments are decoupled (§8).
func (r *Robotron) SyncFleet() error {
	devs, err := r.Store.Find("Device", nil)
	if err != nil {
		return err
	}
	siteOf := map[int64]string{}
	for _, dev := range devs {
		name := dev.String("name")
		if _, exists := r.Fleet.Device(name); exists {
			continue
		}
		siteID := dev.Ref("site")
		if _, ok := siteOf[siteID]; !ok {
			site, err := r.Store.GetByID("Site", siteID)
			if err != nil {
				return err
			}
			siteOf[siteID] = site.String("name")
		}
		vendor, err := r.vendorOf(dev)
		if err != nil {
			return err
		}
		d, err := r.Fleet.AddDevice(name, vendor, dev.String("role"), siteOf[siteID])
		if err != nil {
			return err
		}
		d.SetSyslogSink(func(m netsim.SyslogMessage) { r.Classifier.Process(m) })
		if r.clock != nil {
			d.SetTimeFunc(r.clock.Now)
		}
	}
	// Cable per Desired circuit.
	circuits, err := r.Store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		return err
	}
	for _, c := range circuits {
		aDev, aIf, ok1, err := r.circuitEnd(c, "a_interface")
		if err != nil {
			return err
		}
		zDev, zIf, ok2, err := r.circuitEnd(c, "z_interface")
		if err != nil {
			return err
		}
		if !ok1 || !ok2 {
			continue
		}
		if far, farIf, cabled := r.Fleet.CableOf(aDev, aIf); cabled {
			if far != zDev || farIf != zIf {
				return fmt.Errorf("core: %s:%s is cabled to %s:%s but the design wants %s:%s",
					aDev, aIf, far, farIf, zDev, zIf)
			}
			continue
		}
		if err := r.Fleet.Wire(aDev, aIf, zDev, zIf); err != nil {
			return err
		}
	}
	return nil
}

func (r *Robotron) circuitEnd(c fbnet.Object, field string) (dev, iface string, ok bool, err error) {
	pifID := c.Ref(field)
	if pifID == 0 {
		return "", "", false, nil
	}
	pif, err := r.Store.GetByID("PhysicalInterface", pifID)
	if err != nil {
		return "", "", false, err
	}
	lc, err := r.Store.GetByID("Linecard", pif.Ref("linecard"))
	if err != nil {
		return "", "", false, err
	}
	d, err := r.Store.GetByID("Device", lc.Ref("device"))
	if err != nil {
		return "", "", false, err
	}
	return d.String("name"), pif.String("name"), true, nil
}

// ApplyRecabling reconciles the physical cabling with the Desired
// circuits: cables contradicting the design are removed and the designed
// ones installed — the field technician executing a cabling work order
// after a circuit migration. Returns the number of cables moved.
func (r *Robotron) ApplyRecabling() (int, error) {
	circuits, err := r.Store.Find("Circuit", fbnet.Ne("status", "decommissioned"))
	if err != nil {
		return 0, err
	}
	moved := 0
	for _, c := range circuits {
		aDev, aIf, ok1, err := r.circuitEnd(c, "a_interface")
		if err != nil {
			return moved, err
		}
		zDev, zIf, ok2, err := r.circuitEnd(c, "z_interface")
		if err != nil {
			return moved, err
		}
		if !ok1 || !ok2 {
			continue
		}
		for _, end := range [][2]string{{aDev, aIf}, {zDev, zIf}} {
			if far, farIf, cabled := r.Fleet.CableOf(end[0], end[1]); cabled {
				wantFar, wantFarIf := zDev, zIf
				if end[0] == zDev && end[1] == zIf {
					wantFar, wantFarIf = aDev, aIf
				}
				if far != wantFar || farIf != wantFarIf {
					r.Fleet.Uncable(end[0], end[1])
					moved++
				}
			}
		}
	}
	if err := r.SyncFleet(); err != nil {
		return moved, err
	}
	return moved, nil
}

// ProvisionResult reports a cluster provisioning run.
type ProvisionResult struct {
	Build   design.BuildResult
	Devices []string
	Report  deploy.Report
}

// ProvisionCluster executes the full life cycle for a new cluster: design
// (template → FBNet objects), physical build-out (simulated), config
// generation, initial provisioning, golden commits, and promotion of the
// cluster and its circuits to production.
func (r *Robotron) ProvisionCluster(ctx design.ChangeContext, siteName, clusterName string, tpl design.TopologyTemplate) (ProvisionResult, error) {
	var out ProvisionResult
	tr := r.Tracer.Start("provision-cluster")
	defer tr.End()
	tr.SetAttr("cluster", clusterName)

	dsp := tr.Child("design")
	build, err := r.Designer.BuildCluster(ctx, siteName, clusterName, tpl)
	if err != nil {
		dsp.End()
		tr.SetAttr("error", err.Error())
		return out, fmt.Errorf("core: design stage failed: %w", err)
	}
	dsp.SetAttrInt("objects", int64(build.Stats.Total()))
	dsp.End()
	out.Build = build
	out.Devices = build.DeviceNames
	r.logf("design: cluster %s materialized %d objects", clusterName, build.Stats.Total())

	if err := r.SyncFleet(); err != nil {
		return out, fmt.Errorf("core: physical build-out failed: %w", err)
	}
	gsp := tr.Child("generate")
	configs, err := r.Generator.GenerateManyTraced(build.DeviceNames, r.GenerateParallelism, gsp)
	gsp.End()
	if err != nil {
		tr.SetAttr("error", err.Error())
		return out, fmt.Errorf("core: config generation failed: %w", err)
	}
	r.logf("configgen: %d device configs generated", len(configs))

	if err := r.verifyGate(configs, tr); err != nil {
		tr.SetAttr("error", err.Error())
		return out, fmt.Errorf("core: intent verification failed: %w", err)
	}

	psp := tr.Child("provision")
	rep, err := r.Deployer.InitialProvision(configs, deploy.Options{Notify: r.Logf, Parallelism: r.DeployParallelism, Retry: r.DeployRetry})
	psp.End()
	out.Report = rep
	if err != nil {
		tr.SetAttr("error", err.Error())
		return out, fmt.Errorf("core: initial provisioning failed: %w", err)
	}
	for name, cfg := range configs {
		if _, err := r.Generator.CommitGolden(name, cfg, ctx.EmployeeID, "initial provisioning of "+clusterName); err != nil {
			return out, err
		}
	}
	// Promote the cluster and its circuits to production and undrain.
	_, err = r.Store.Mutate(func(m *fbnet.Mutation) error {
		cluster, err := m.FindOne("Cluster", fbnet.Eq("name", clusterName))
		if err != nil {
			return err
		}
		if err := m.Update("Cluster", cluster.ID, map[string]any{"status": "production"}); err != nil {
			return err
		}
		circuits, err := m.Find("Circuit", fbnet.And(
			fbnet.Eq("status", "provisioning"),
			fbnet.Eq("a_interface.linecard.device.cluster", cluster.ID),
		))
		if err != nil {
			return err
		}
		for _, c := range circuits {
			if err := m.Update("Circuit", c.ID, map[string]any{"status": "production"}); err != nil {
				return err
			}
		}
		devs, err := m.Referencing("Device", "cluster", cluster.ID)
		if err != nil {
			return err
		}
		for _, d := range devs {
			if err := m.Update("Device", d.ID, map[string]any{"drain_state": "undrained"}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return out, err
	}
	for _, name := range build.DeviceNames {
		if d, ok := r.Fleet.Device(name); ok {
			d.SetTrafficLoad(0.3)
		}
	}
	if err := audit.RecordDeploy(r.Store, "provision", len(configs), "cluster "+clusterName, r.now().Unix()); err != nil {
		return out, err
	}
	if err := r.DeriveMonitoring(); err != nil {
		return out, err
	}
	r.logf("deploy: cluster %s provisioned and serving", clusterName)
	return out, nil
}

// GenerateAndDeploy regenerates configs for the named devices and deploys
// them incrementally. Golden configs are committed *before* deployment:
// the golden is the current intent (§5.4.3), so the config-change events
// the deployment itself raises compare against the new intent, and a
// failed or rolled-back deployment correctly leaves the device flagged as
// deviating until it is retried.
func (r *Robotron) GenerateAndDeploy(devices []string, opts deploy.Options, author string) (deploy.Report, error) {
	tr := r.Tracer.Start("generate-and-deploy")
	defer tr.End()
	tr.SetAttrInt("devices", int64(len(devices)))

	gsp := tr.Child("generate")
	configs, err := r.Generator.GenerateManyTraced(devices, r.GenerateParallelism, gsp)
	gsp.End()
	if err != nil {
		tr.SetAttr("error", err.Error())
		return deploy.Report{}, err
	}
	// The gate runs before the goldens move and before any management
	// session opens: a rejected deployment leaves no trace on the fleet
	// and no stale intent in the repository.
	if err := r.verifyGate(configs, tr); err != nil {
		tr.SetAttr("error", err.Error())
		return deploy.Report{}, err
	}
	for name, cfg := range configs {
		if _, err := r.Generator.CommitGolden(name, cfg, author, "incremental update intent"); err != nil {
			tr.SetAttr("error", err.Error())
			return deploy.Report{}, err
		}
	}
	if opts.Notify == nil {
		opts.Notify = r.Logf
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = r.DeployParallelism
	}
	if opts.Retry == nil {
		opts.Retry = r.DeployRetry
	}
	dsp := tr.Child("deploy")
	opts.Span = dsp
	rep, err := r.Deployer.Deploy(configs, opts)
	dsp.End()
	if err != nil {
		tr.SetAttr("error", err.Error())
		return rep, err
	}
	if err := audit.RecordDeploy(r.Store, "deploy", len(configs), "by "+author, r.now().Unix()); err != nil {
		return rep, err
	}
	// Design may have changed under this deployment: regenerate the
	// derived monitoring config alongside the device config.
	if err := r.DeriveMonitoring(); err != nil {
		return rep, err
	}
	// Close the loop inside the same trace: a synchronous conformance
	// pass over the deployed devices, feeding any drift or check error
	// into the reconciler's normal state machine.
	if r.Reconciler != nil {
		rsp := tr.Child("reconcile")
		rsp.SetAttrInt("checked", int64(r.Reconciler.VerifyDevices(devices, rsp)))
		rsp.End()
	}
	return rep, nil
}

// verifyGate runs the pre-deploy intent verification over the candidate
// configs (the §5.2→§5.3 boundary): network-wide invariants are checked
// against FBNet, the decision is recorded as an audit event, and a
// rejection — carrying every counterexample — is returned before a single
// management session is opened.
func (r *Robotron) verifyGate(configs map[string]string, tr *telemetry.Span) error {
	if !r.VerifyIntent || r.Verifier == nil {
		if r.Verifier != nil {
			// A bypassed gate still leaves a visible trail in the
			// operational record.
			if err := audit.RecordGateBypass(r.Store, len(configs), r.now().Unix()); err != nil {
				return err
			}
		}
		return nil
	}
	sp := tr.Child("verify")
	res, err := r.Verifier.Check(configs)
	sp.SetAttrInt("violations", int64(len(res.Violations)))
	sp.End()
	if err != nil {
		return err
	}
	summaries := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		summaries = append(summaries, fmt.Sprintf("[%s] %s: %s", v.Invariant, v.Device, v.Detail))
	}
	if err := audit.RecordGate(r.Store, res.Devices, summaries, r.now().Unix()); err != nil {
		return err
	}
	if !res.Pass() {
		for _, v := range res.Violations {
			r.logf("verify: %s", v)
		}
		return &verify.RejectionError{Result: res}
	}
	r.logf("verify: %d devices checked, all invariants hold (%v)", res.Devices, res.Elapsed)
	return nil
}

// PromoteCircuits moves every fully-deployed provisioning circuit to
// production, the design-side close-out after a successful turn-up.
// Returns the number promoted.
func (r *Robotron) PromoteCircuits() (int, error) {
	n := 0
	_, err := r.Store.Mutate(func(m *fbnet.Mutation) error {
		circuits, err := m.Find("Circuit", fbnet.Eq("status", "provisioning"))
		if err != nil {
			return err
		}
		for _, c := range circuits {
			if c.Ref("a_interface") == 0 || c.Ref("z_interface") == 0 {
				continue
			}
			if err := m.Update("Circuit", c.ID, map[string]any{"status": "production"}); err != nil {
				return err
			}
			n++
		}
		return nil
	})
	return n, err
}

// DevicesOfSite lists device names at a site.
func (r *Robotron) DevicesOfSite(site string) ([]string, error) {
	devs, err := r.Store.Find("Device", fbnet.Eq("site.name", site))
	if err != nil {
		return nil, err
	}
	names := make([]string, len(devs))
	for i, d := range devs {
		names[i] = d.String("name")
	}
	return names, nil
}

// InstallStandardMonitoring registers the standard periodic jobs with the
// Table 2-shaped engine mix. The jobs target the whole fleet *as of each
// execution*, so clusters provisioned later are monitored automatically.
func (r *Robotron) InstallStandardMonitoring() error {
	if len(r.Fleet.Devices()) == 0 {
		return fmt.Errorf("core: no devices to monitor")
	}
	for _, j := range StandardJobs(nil) {
		if err := r.JobManager.AddJob(j); err != nil {
			return err
		}
	}
	return nil
}

// StandardJobs returns the standard job mix: SNMP counters dominate, CLI
// covers the vendor gaps, RPC/XML and Thrift carry structured state
// (§5.4.2, Table 2). A nil device list targets the whole fleet at each
// execution.
func StandardJobs(devices []string) []monitor.JobSpec {
	all := devices == nil
	return []monitor.JobSpec{
		{Name: "snmp-counters", Period: 1 * time.Minute, Engine: monitor.EngineSNMP,
			Data: monitor.DataCounters, Devices: devices, AllDevices: all, Backends: []string{"timeseries"}},
		{Name: "snmp-interfaces", Period: 2 * time.Minute, Engine: monitor.EngineSNMP,
			Data: monitor.DataInterfaces, Devices: devices, AllDevices: all, Backends: []string{"timeseries", "fbnet-derived"}},
		{Name: "cli-lldp", Period: 10 * time.Minute, Engine: monitor.EngineCLI,
			Data: monitor.DataLLDP, Devices: devices, AllDevices: all, Backends: []string{"fbnet-derived"}},
		{Name: "cli-config-backup", Period: 60 * time.Minute, Engine: monitor.EngineCLI,
			Data: monitor.DataConfig, Devices: devices, AllDevices: all, Backends: []string{"config-backup"}},
		{Name: "rpcxml-interfaces", Period: 15 * time.Minute, Engine: monitor.EngineRPCXML,
			Data: monitor.DataInterfaces, Devices: devices, AllDevices: all, Backends: []string{"fbnet-derived"}},
		{Name: "thrift-bgp", Period: 5 * time.Minute, Engine: monitor.EngineThrift,
			Data: monitor.DataBGP, Devices: devices, AllDevices: all, Backends: []string{"fbnet-derived"}},
		{Name: "thrift-version", Period: 30 * time.Minute, Engine: monitor.EngineThrift,
			Data: monitor.DataVersion, Devices: devices, AllDevices: all, Backends: []string{"fbnet-derived"}},
	}
}

// CollectOnce runs every installed job once and refreshes derived
// circuits, the "one monitoring cycle" primitive used by audits and
// examples.
func (r *Robotron) CollectOnce() error {
	for _, spec := range r.JobManager.Jobs() {
		if _, err := r.JobManager.RunOnce(monitor.JobSpec{
			Name: "adhoc-" + spec.Name, Period: spec.Period, Engine: spec.Engine,
			Data: spec.Data, Devices: spec.Devices, AllDevices: spec.AllDevices,
			Backends: spec.Backends,
		}); err != nil {
			return err
		}
	}
	_, err := monitor.DeriveCircuits(r.Store)
	return err
}

// DeriveMonitoring regenerates the intent-derived monitoring config:
// collection jobs and alarm rules are recomputed from FBNet and swapped
// in atomically (jobs under the "derived-" prefix, the full alarm rule
// set). No-op when the alarm engine is disabled. Called automatically
// after ProvisionCluster and GenerateAndDeploy.
func (r *Robotron) DeriveMonitoring() error {
	if r.Alarms == nil {
		return nil
	}
	jobs, rules, err := monitor.DeriveJobs(r.Store)
	if err != nil {
		return err
	}
	if err := r.JobManager.ReplaceJobs("derived-", jobs); err != nil {
		return err
	}
	r.Alarms.ReplaceRules(rules)
	r.logf("monitor: derived %d collection jobs, %d alarm rules", len(jobs), len(rules))
	return nil
}

// ObserveOnce is one full monitoring cycle with evaluation: every
// installed job runs once (CollectOnce), then the alarm engine evaluates
// all rules over the fresh data. Returns the alarms currently firing.
func (r *Robotron) ObserveOnce() ([]monitor.Alarm, error) {
	if err := r.CollectOnce(); err != nil {
		return nil, err
	}
	if r.Alarms == nil {
		return nil, nil
	}
	return r.Alarms.Evaluate(), nil
}

// Audit runs the Desired-vs-Derived anomaly detection.
func (r *Robotron) Audit() (audit.Report, error) {
	return audit.Run(r.Store)
}

// MetricHealthCheck returns a phased-deployment health gate that requires
// the device reachable, its running config converged on the intent, and
// its CPU utilization below maxCPU percent — "Robotron monitors metrics to
// track the progress of each phase" (§5.3.2).
func MetricHealthCheck(maxCPU float64) func(t deploy.Target, intended string) error {
	return func(t deploy.Target, intended string) error {
		if !t.Reachable() {
			return fmt.Errorf("device unreachable")
		}
		running, err := t.RunningConfig()
		if err != nil {
			return err
		}
		if running != intended {
			return fmt.Errorf("running config deviates from intent")
		}
		counters, ok := t.(interface {
			Counters() (map[string]float64, error)
		})
		if !ok {
			return nil // transport without metrics: config check suffices
		}
		c, err := counters.Counters()
		if err != nil {
			return err
		}
		if cpu := c["cpu_util"]; cpu > maxCPU {
			return fmt.Errorf("cpu utilization %.1f%% exceeds gate %.1f%%", cpu, maxCPU)
		}
		return nil
	}
}

// DrainDevice records the drain in FBNet and moves production traffic off
// the device (§1's drain procedure, a prerequisite for maintenance and
// initial provisioning).
func (r *Robotron) DrainDevice(ctx design.ChangeContext, name string) error {
	if _, err := r.Designer.SetDrainState(ctx, name, "drained"); err != nil {
		return err
	}
	if d, ok := r.Fleet.Device(name); ok {
		d.SetTrafficLoad(0)
	}
	return nil
}

// UndrainDevice returns a device to service.
func (r *Robotron) UndrainDevice(ctx design.ChangeContext, name string) error {
	if _, err := r.Designer.SetDrainState(ctx, name, "undrained"); err != nil {
		return err
	}
	if d, ok := r.Fleet.Device(name); ok {
		d.SetTrafficLoad(0.3)
	}
	return nil
}
