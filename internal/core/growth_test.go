package core

import (
	"testing"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// TestMonitoringFollowsFleetGrowth: jobs installed before a second
// cluster exists still cover it — the fleet is enumerated at execution
// time, not at job-installation time.
func TestMonitoringFollowsFleetGrowth(t *testing.T) {
	r := newRobotron(t)
	provisionPOP(t, r) // installs standard monitoring over pop1
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	before, _ := r.Store.Count("DerivedDevice")
	if before != 6 {
		t.Fatalf("derived devices = %d", before)
	}
	// A new cluster lands months later; no monitoring reconfiguration.
	if _, err := r.Designer.EnsureSite("pop2", "pop", "emea"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ProvisionCluster(testCtx("pop"), "pop2", "pop2-c1", design.POPGen1()); err != nil {
		t.Fatal(err)
	}
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	after, _ := r.Store.Count("DerivedDevice")
	if after != 12 {
		t.Errorf("derived devices after growth = %d, want 12", after)
	}
	// The new cluster's devices are fully observed (not just versions).
	objs, err := r.Store.Find("DerivedInterface", fbnet.Contains("device_name", "pop2-c1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) == 0 {
		t.Error("new cluster's interfaces not collected")
	}
}
