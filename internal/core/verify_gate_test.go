package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/telemetry"
	"github.com/robotron-net/robotron/internal/verify"
)

// TestVerifyGateRejectsBeforeAnyManagementSession is the end-to-end
// contract of the pre-deploy gate: when intent verification fails, the
// rejection happens before a single management session is opened — no
// staged candidates, no pending commit-confirms, not one management
// operation issued, and the golden intent untouched.
func TestVerifyGateRejectsBeforeAnyManagementSession(t *testing.T) {
	r := newRobotron(t)
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ProvisionCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatalf("clean cluster rejected by the gate: %v", err)
	}

	// Snapshot the fleet's management footprint and golden intent.
	opsBefore := map[string]int64{}
	goldenBefore := map[string]string{}
	for _, name := range res.Devices {
		d, ok := r.Fleet.Device(name)
		if !ok {
			t.Fatalf("device %s missing from fleet", name)
		}
		opsBefore[name] = d.MgmtOps()
		g, err := r.Generator.Golden(name)
		if err != nil {
			t.Fatal(err)
		}
		goldenBefore[name] = g
	}

	// Break one invariant in FBNet: flip a session's remote AS.
	ss, err := r.Store.Find("BgpV6Session", fbnet.Eq("session_type", "ebgp"))
	if err != nil || len(ss) == 0 {
		t.Fatalf("no ebgp sessions: %v", err)
	}
	if _, err := r.Store.Mutate(func(m *fbnet.Mutation) error {
		return m.Update("BgpV6Session", ss[0].ID, map[string]any{"remote_as": int64(65999)})
	}); err != nil {
		t.Fatal(err)
	}

	_, err = r.GenerateAndDeploy(res.Devices, deploy.Options{}, "e1")
	if err == nil {
		t.Fatal("broken intent deployed without rejection")
	}
	var rej *verify.RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("error is not a gate rejection: %v", err)
	}
	if rej.Result.Pass() || len(rej.Result.Violations) == 0 {
		t.Fatalf("rejection carries no violations: %+v", rej.Result)
	}

	// The fleet never heard about it: no candidate staged, no rollback
	// timer armed, zero additional management operations.
	for _, name := range res.Devices {
		d, _ := r.Fleet.Device(name)
		if d.HasCandidate() {
			t.Errorf("%s has a staged candidate after gate rejection", name)
		}
		if d.ConfirmPending() {
			t.Errorf("%s has a pending commit-confirm after gate rejection", name)
		}
		if got := d.MgmtOps(); got != opsBefore[name] {
			t.Errorf("%s management ops %d -> %d: gate rejection touched the device", name, opsBefore[name], got)
		}
	}
	// The golden intent did not move either: a rejected deployment leaves
	// the repository exactly as it was.
	for _, name := range res.Devices {
		g, err := r.Generator.Golden(name)
		if err != nil {
			t.Fatal(err)
		}
		if g != goldenBefore[name] {
			t.Errorf("%s golden config changed despite gate rejection", name)
		}
	}

	// The decision is on the audit record and in telemetry.
	events, err := r.Store.Find("OperationalEvent", fbnet.Eq("kind", "verify-gate"))
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, e := range events {
		if e.String("urgency") == "CRITICAL" && strings.Contains(e.String("detail"), "rejected") {
			rejected = true
		}
	}
	if !rejected {
		t.Errorf("no CRITICAL verify-gate audit event recorded; events: %d", len(events))
	}
	if got := r.Telemetry.Counter("robotron_verify_rejections_total").Value(); got != 1 {
		t.Errorf("rejections counter = %d, want 1", got)
	}
	if got := r.Telemetry.Histogram("robotron_verify_seconds").Count(); got < 2 {
		t.Errorf("gate latency observations = %d, want >= 2 (provision + rejected deploy)", got)
	}
	if got := r.Telemetry.Counter("robotron_verify_violations_total",
		telemetry.L("invariant", string(verify.BGPSymmetry))...).Value(); got == 0 {
		t.Error("bgp-symmetry violation counter not incremented")
	}

	// The escape hatch: with the gate off (-no-verify), the same deploy
	// goes through — explicitly accepted risk, not a hidden default.
	r.VerifyIntent = false
	if _, err := r.GenerateAndDeploy(res.Devices, deploy.Options{}, "e1"); err != nil {
		t.Fatalf("deploy with gate disabled failed: %v", err)
	}
	// Even a bypassed gate leaves a WARNING on the operational record.
	events, err = r.Store.Find("OperationalEvent", fbnet.Eq("kind", "verify-gate"))
	if err != nil {
		t.Fatal(err)
	}
	bypassed := false
	for _, e := range events {
		if e.String("urgency") == "WARNING" && strings.Contains(e.String("detail"), "BYPASSED") {
			bypassed = true
		}
	}
	if !bypassed {
		t.Error("no WARNING verify-gate audit event recorded for the bypassed deploy")
	}
}

// TestVerifyGateOptionDisables covers the Options plumbing for -no-verify.
func TestVerifyGateOptionDisables(t *testing.T) {
	off := false
	r, err := New(Options{VerifyIntent: &off})
	if err != nil {
		t.Fatal(err)
	}
	if r.VerifyIntent {
		t.Error("VerifyIntent=false option did not disable the gate")
	}
	on := true
	r2, err := New(Options{VerifyIntent: &on})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.VerifyIntent {
		t.Error("VerifyIntent=true option did not enable the gate")
	}
	if r3 := newRobotron(t); !r3.VerifyIntent {
		t.Error("gate is not on by default")
	}
}
