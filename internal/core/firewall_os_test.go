package core

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// TestPhasedFirewallRuleChange replays the paper's §5.3.2 example: "some
// deployments, such as firewall rule changes, require applying new
// configurations in multiple phases." A policy attached to the whole POP
// gets a new rule; the change fans out to every attached device and rolls
// out phase by phase with health gates.
func TestPhasedFirewallRuleChange(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	ctx := testCtx("pop")

	// Install the baseline control-plane filter on every device.
	if _, err := r.Designer.EnsureFirewallPolicy(ctx, design.FirewallSpec{
		Name: "cp-protect", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00::/32", DstPort: 179},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AttachFirewall(ctx, "cp-protect", res.Devices); err != nil {
		t.Fatal(err)
	}
	rep, err := r.GenerateAndDeploy(res.Devices, deploy.Options{}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Fatalf("failures: %+v", rep.Failed())
	}
	// Both vendors carry the filter.
	v1, _ := r.Fleet.Device("pr1.pop1-c1")
	cfg, _ := v1.RunningConfig()
	if !strings.Contains(cfg, "ipv6 access-list cp-protect") || !strings.Contains(cfg, "eq 179") {
		t.Errorf("vendor1 ACL missing:\n%s", grepLines(cfg, "cp-protect"))
	}
	v2, _ := r.Fleet.Device("psw1.pop1-c1")
	cfg, _ = v2.RunningConfig()
	if !strings.Contains(cfg, "filter cp-protect {") || !strings.Contains(cfg, "input cp-protect;") {
		t.Errorf("vendor2 filter missing:\n%s", grepLines(cfg, "cp-protect"))
	}

	// The rule change: allow SSH from the management prefix. One design
	// change; every attached device's generated config changes.
	if _, err := r.Designer.EnsureFirewallPolicy(ctx, design.FirewallSpec{
		Name: "cp-protect", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00::/32", DstPort: 179},
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00:aa::/48", DstPort: 22},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var phases []string
	rep, err = r.GenerateAndDeploy(res.Devices, deploy.Options{
		Phases: []deploy.Phase{
			{Name: "canary", Percent: 25},
			{Name: "half", Percent: 50},
			{Name: "rest"},
		},
		Notify: func(f string, a ...any) {
			if strings.Contains(f, "phase") {
				phases = append(phases, f)
			}
		},
	}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) < 3 {
		t.Errorf("phases executed = %d, want >= 3", len(phases))
	}
	for _, name := range res.Devices {
		d, _ := r.Fleet.Device(name)
		cfg, _ := d.RunningConfig()
		if !strings.Contains(cfg, "22") || !strings.Contains(cfg, "2401:db00:aa::/48") {
			t.Errorf("%s missing the new SSH rule", name)
		}
	}
}

// TestOSUpgradeWorkflow covers the §1 OS upgrade task end to end: qualify
// an image, assign it in the design, drain, upgrade, verify via
// monitoring, undrain — with the audit catching version drift.
func TestOSUpgradeWorkflow(t *testing.T) {
	r := newRobotron(t)
	provisionPOP(t, r)
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx("pop")
	victim := "pr1.pop1-c1" // vendor1 device running 7.3.2

	if _, err := r.Designer.EnsureOsImage(ctx, "os-7.4.1", "7.4.1", "vendor1"); err != nil {
		t.Fatal(err)
	}
	// Vendor mismatch is refused.
	if _, err := r.Designer.EnsureOsImage(ctx, "os-18.1", "18.1R1", "vendor2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AssignOsImage(ctx, victim, "os-18.1"); err == nil {
		t.Error("cross-vendor image assignment should fail")
	}
	if _, err := r.Designer.AssignOsImage(ctx, victim, "os-7.4.1"); err != nil {
		t.Fatal(err)
	}
	// The audit now flags the version drift: design wants 7.4.1, the
	// device still runs 7.3.2.
	rep, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()["os-mismatch"] != 1 {
		t.Errorf("audit = %v, want one os-mismatch", rep.ByKind())
	}
	// Drain, upgrade, recollect, undrain.
	if err := r.DrainDevice(ctx, victim); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Fleet.Device(victim)
	d.UpgradeOS("7.4.1")
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	if err := r.UndrainDevice(ctx, victim); err != nil {
		t.Fatal(err)
	}
	rep, _ = r.Audit()
	if rep.ByKind()["os-mismatch"] != 0 {
		t.Errorf("os-mismatch persists after upgrade: %v", rep.Anomalies)
	}
	v, _ := d.ShowVersion()
	if v.OSVersion != "7.4.1" {
		t.Errorf("device version = %s", v.OSVersion)
	}
	obj, _ := r.Store.FindOne("DerivedDevice", fbnet.Eq("name", victim))
	if obj.String("os_version") != "7.4.1" {
		t.Errorf("derived version = %s", obj.String("os_version"))
	}
}

func grepLines(s, pat string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, pat) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
