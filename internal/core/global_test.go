package core

import (
	"strings"
	"testing"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/monitor"
)

// TestGlobalNetworkOfNetworks assembles the paper's Figure 1: two edge
// POPs and a DC, interconnected through a backbone, then runs the full
// monitoring cycle and expects a clean audit — the "networks of networks"
// where "all of them must be configured correctly in order for the entire
// network to function" (§1).
func TestGlobalNetworkOfNetworks(t *testing.T) {
	r := newRobotron(t)
	// Sites across regions.
	for _, s := range []struct{ name, kind, region string }{
		{"pop-east", "pop", "nam"}, {"pop-west", "pop", "nam"},
		{"dc1", "dc", "nam"},
		{"bb-hub", "backbone", "nam"},
	} {
		if _, err := r.Designer.EnsureSite(s.name, s.kind, s.region); err != nil {
			t.Fatal(err)
		}
	}
	// Edge and DC clusters.
	popEast, err := r.ProvisionCluster(testCtx("pop"), "pop-east", "pop-east-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	popWest, err := r.ProvisionCluster(testCtx("pop"), "pop-west", "pop-west-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := r.ProvisionCluster(testCtx("dc"), "dc1", "dc1-c1", design.DCGen2(2))
	if err != nil {
		t.Fatal(err)
	}
	// Backbone core.
	for _, n := range []string{"bb1", "bb2"} {
		if _, err := r.Designer.AddBackboneRouter(testCtx("backbone"), n, "bb-hub", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-domain transport: each POP's PR and the DC's DR attach to the
	// backbone ("PRs and DRs as edge nodes", §2.3).
	for _, edge := range []string{"pr1.pop-east-c1", "pr1.pop-west-c1", "dr1.dc1-c1"} {
		if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), edge, "bb1", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), edge, "bb2", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Peering at the east POP.
	if _, _, err := r.Designer.AddPeering(testCtx("pop"), design.PeeringSpec{
		Device: "pr1.pop-east-c1", Partner: "ISP-One", ASN: 3356, Kind: "transit", LocalAS: 32934,
		ImportPolicy: &design.PolicySpec{
			Name:  "isp-one-in",
			Terms: []design.PolicyTermSpec{{MatchPrefix: "2001:db8::/32", Action: "accept"}, {Action: "reject"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Physical build-out + deployment of the whole estate.
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	_ = popEast
	_ = popWest
	_ = dc
	devs, err := r.Store.Find("Device", nil)
	if err != nil {
		t.Fatal(err)
	}
	var redeploy []string
	for _, d := range devs {
		redeploy = append(redeploy, d.String("name"))
	}
	if _, err := r.GenerateAndDeploy(redeploy, deploy.Options{}, "e1"); err != nil {
		t.Fatal(err)
	}
	// Close out the turn-up: the cross-domain circuits go production.
	if n, err := r.PromoteCircuits(); err != nil || n != 6 {
		t.Fatalf("promoted %d circuits (%v), want 6", n, err)
	}
	// The whole estate: 2 POPs (6 each) + DC (4 dr + 16 fsw + 2 tor) + 2
	// backbone routers.
	if len(redeploy) != 36 {
		t.Errorf("estate = %d devices, want 36", len(redeploy))
	}
	// Full monitoring cycle over everything; the audit is clean except for
	// the external peering session (its far side is an ISP we don't
	// simulate), which should be the ONLY anomaly class.
	if err := r.InstallStandardMonitoring(); err != nil {
		t.Fatal(err)
	}
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rep.Anomalies {
		if a.Kind != "bgp-down" || !strings.Contains(a.Detail, "ebgp") {
			t.Errorf("unexpected anomaly: %v", a)
		}
	}
	// Cross-domain circuits exist in the Derived state too.
	derived, _ := r.Store.Find("DerivedCircuit", nil)
	var crossDomain int
	for _, c := range derived {
		a, z := c.String("a_device"), c.String("z_device")
		if (strings.HasPrefix(a, "bb") && !strings.HasPrefix(z, "bb")) ||
			(strings.HasPrefix(z, "bb") && !strings.HasPrefix(a, "bb")) {
			crossDomain++
		}
	}
	if crossDomain != 6 {
		t.Errorf("cross-domain derived circuits = %d, want 6", crossDomain)
	}
	// Design validation over the whole estate.
	violations, err := design.ValidateDesign(r.Store)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations: %v", violations[:min(5, len(violations))])
	}
	// FBNet scale sanity: the read API answers a global question — which
	// devices terminate production circuits to the backbone hub site.
	res, err := r.Store.Get("Circuit",
		[]string{"circuit_id", "a_interface.linecard.device.name"},
		fbnet.Eq("z_interface.linecard.device.site.name", "bb-hub"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 6 {
		t.Errorf("global query found %d circuits into bb-hub", len(res))
	}
	// Monitoring stats flowed.
	counts := r.JobManager.Stats().Counts()
	if counts[monitor.EngineSNMP] == 0 || counts[monitor.EngineCLI] == 0 {
		t.Errorf("monitoring counts = %v", counts)
	}
}
