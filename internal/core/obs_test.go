package core

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/monitor"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/vclock"
)

// TestObsEndpointsMatchSnapshot: /alarms and /timeline serve exactly what
// the programmatic API reports — the acceptance contract for the CLI and
// HTTP surfaces being views over one alarm engine.
func TestObsEndpointsMatchSnapshot(t *testing.T) {
	vc := vclock.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	r, err := New(Options{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ProvisionCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1()); err != nil {
		t.Fatal(err)
	}
	// Provisioning derived the monitoring config automatically.
	if len(r.Alarms.Rules()) == 0 {
		t.Fatal("no alarm rules derived after provisioning")
	}
	// Baseline samples, then six silent minutes: every device trips its
	// derived device-unreachable absence rule.
	if _, err := r.ObserveOnce(); err != nil {
		t.Fatal(err)
	}
	vc.Advance(6 * time.Minute)
	if firing := r.Alarms.Evaluate(); len(firing) == 0 {
		t.Fatal("expected device-unreachable alarms after silence")
	}

	srv, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var httpAlarms []monitor.Alarm
	getJSON(t, "http://"+srv.Addr+"/alarms", &httpAlarms)
	wantAlarms := r.Alarms.Snapshot()
	if !jsonEqual(t, httpAlarms, wantAlarms) {
		t.Errorf("/alarms diverges from Alarms.Snapshot(): %d vs %d entries", len(httpAlarms), len(wantAlarms))
	}
	if len(httpAlarms) == 0 {
		t.Error("/alarms served an empty snapshot while alarms are firing")
	}

	var httpTimeline []monitor.TimelineEntry
	getJSON(t, "http://"+srv.Addr+"/timeline", &httpTimeline)
	wantTimeline := r.Alarms.Timeline(time.Time{}, time.Time{})
	if !jsonEqual(t, httpTimeline, wantTimeline) {
		t.Errorf("/timeline diverges from Alarms.Timeline(): %d vs %d entries", len(httpTimeline), len(wantTimeline))
	}
	// The timeline must contain the provisioning deploy record and the
	// fired alarms.
	stages := map[string]bool{}
	for _, e := range httpTimeline {
		stages[e.Stage] = true
	}
	for _, want := range []string{"deploy", "alarm"} {
		if !stages[want] {
			t.Errorf("timeline missing stage %q (got %v)", want, stages)
		}
	}
}

// TestObsReconcileEndpointMatchesSnapshot: /reconcile serves exactly what
// Reconciler.Snapshot() reports, shards are the provisioned site (the
// failure domain comes from FBNet membership, not name parsing), and a
// device drift shows up as backlog in the served document.
func TestObsReconcileEndpointMatchesSnapshot(t *testing.T) {
	clk := reconcile.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	off := false
	r, err := New(Options{
		EnableReconciler: true,
		EnableAlarms:     &off, // /reconcile must not depend on the alarm engine
		Reconcile:        reconcile.Config{Clock: clk},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Reconciler.Stop)
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ProvisionCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-band drift on one device, surfaced by a sweep: the snapshot
	// gains a tracked device and an open backlog entry under site pop1.
	dev, ok := r.Fleet.Device(res.Devices[0])
	if !ok {
		t.Fatalf("device %s not in fleet", res.Devices[0])
	}
	golden, err := r.Generator.Golden(res.Devices[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.InjectRunningConfig(golden + "rogue line\n"); err != nil {
		t.Fatal(err)
	}
	if n := r.Reconciler.Sweep(); n == 0 {
		t.Fatal("sweep checked no devices")
	}

	srv, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var httpSnap reconcile.Snapshot
	getJSON(t, "http://"+srv.Addr+"/reconcile", &httpSnap)
	want := r.Reconciler.Snapshot()
	if !jsonEqual(t, httpSnap, want) {
		t.Errorf("/reconcile diverges from Reconciler.Snapshot():\nhttp: %+v\napi:  %+v", httpSnap, want)
	}
	if len(httpSnap.Shards) != 1 || httpSnap.Shards[0].Shard != "pop1" {
		t.Fatalf("shards = %+v, want exactly site pop1", httpSnap.Shards)
	}
	sh := httpSnap.Shards[0]
	if sh.Open != 1 || sh.Devices < 1 || sh.Tripped {
		t.Errorf("pop1 shard = %+v, want open=1 breaker closed", sh)
	}
	if sh.Budget <= 0 {
		t.Errorf("pop1 budget = %d, want > 0 (ShardFleetSize wired)", sh.Budget)
	}
}

// TestAlarmsDisabledOmitsEndpoints: with EnableAlarms off the engine is
// absent and the observability endpoints 404 rather than serving stale
// empty documents.
func TestAlarmsDisabledOmitsEndpoints(t *testing.T) {
	off := false
	r, err := New(Options{EnableAlarms: &off})
	if err != nil {
		t.Fatal(err)
	}
	if r.Alarms != nil {
		t.Fatal("alarm engine present despite EnableAlarms=false")
	}
	srv, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/alarms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/alarms status = %d with alarms disabled, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s decode: %v", url, err)
	}
}

func jsonEqual(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}
