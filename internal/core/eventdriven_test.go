package core

import (
	"testing"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// TestEventDrivenCollection: a link-down syslog triggers an immediate
// targeted poll, so DerivedInterface flips to down without waiting for a
// periodic cycle.
func TestEventDrivenCollection(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	victim := res.Devices[0]
	d, _ := r.Fleet.Device(victim)
	ifaces, _ := d.ShowInterfaces()
	var port string
	for _, ifc := range ifaces {
		if ifc.OperStatus == "up" && ifc.Name != "lo0" {
			port = ifc.Name
			break
		}
	}
	if port == "" {
		t.Fatal("no up port")
	}
	// Cut the fiber: the device emits LINK_STATE down -> classifier ->
	// ad-hoc interface poll, synchronously in this simulation.
	r.Fleet.Uncable(victim, port)
	obj, err := r.Store.FindOne("DerivedInterface", fbnet.And(
		fbnet.Eq("device_name", victim), fbnet.Eq("name", port)))
	if err != nil {
		t.Fatal(err)
	}
	if obj.String("oper_status") != "down" {
		t.Errorf("DerivedInterface %s:%s = %s without a periodic cycle, want down",
			victim, port, obj.String("oper_status"))
	}
	// The event itself is in the operational history.
	events, err := r.Store.Find("OperationalEvent", fbnet.And(
		fbnet.Eq("device_name", victim), fbnet.Eq("kind", "link-state")))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Error("no link-state OperationalEvent recorded")
	}
}

// TestMetricHealthCheckGate: a phased rollout halts when a device breaches
// the CPU gate even though its config converged.
func TestMetricHealthCheckGate(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	// Overload one device.
	hot, _ := r.Fleet.Device(res.Devices[2])
	hot.SetTrafficLoad(1.0) // drives cpu_util above any sane gate
	_, err := r.GenerateAndDeploy(res.Devices, deploy.Options{
		Phases:      []deploy.Phase{{Name: "canary", Percent: 50}, {Name: "rest"}},
		HealthCheck: MetricHealthCheck(60),
	}, "e1")
	if err == nil {
		t.Fatal("deployment should halt on the CPU gate")
	}
	// A permissive gate passes.
	if _, err := r.GenerateAndDeploy(res.Devices, deploy.Options{
		HealthCheck: MetricHealthCheck(1000),
	}, "e1"); err != nil {
		t.Fatal(err)
	}
}

// TestBGPFlapTriggersCollection: taking a far-side device down flaps the
// BGP session; the alert-driven poll records the Active state.
func TestBGPFlapTriggersCollection(t *testing.T) {
	r := newRobotron(t)
	r.Designer.EnsureSite("bb-site", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2"} {
		if _, err := r.Designer.AddBackboneRouter(testCtx("backbone"), n, "bb-site", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy([]string{"bb1", "bb2"}, deploy.Options{}, "e1"); err != nil {
		t.Fatal(err)
	}
	// Confirm the mesh session established, then kill bb2.
	b1, _ := r.Fleet.Device("bb1")
	peers, _ := b1.ShowBGPSummary()
	if len(peers) == 0 || peers[0].State != "Established" {
		t.Fatalf("session not established: %+v", peers)
	}
	b2, _ := r.Fleet.Device("bb2")
	b2.SetDown(true)
	r.Fleet.Recompute() // flaps links and BGP, emitting alerts
	objs, err := r.Store.Find("DerivedBgpSession", fbnet.Eq("device_name", "bb1"))
	if err != nil {
		t.Fatal(err)
	}
	var sawActive bool
	for _, o := range objs {
		if o.String("state") == "Active" {
			sawActive = true
		}
	}
	if !sawActive {
		t.Errorf("BGP flap not captured by event-driven collection: %d sessions", len(objs))
	}
	_ = design.ChangeContext{}
}
