package core

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/reconcile"
	"github.com/robotron-net/robotron/internal/telemetry"
)

// newTracedPOP provisions a 6-device POP with the reconciler enabled on
// a virtual clock (timers never fire on their own) and pushes one site
// change — a firewall policy update — through GenerateAndDeploy in two
// phases.
func newTracedPOP(t *testing.T) (*Robotron, []string) {
	t.Helper()
	clk := reconcile.NewVirtualClock(time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC))
	r, err := New(Options{
		EnableReconciler: true,
		Reconcile:        reconcile.Config{Clock: clk},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Reconciler.Stop)
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ProvisionCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.EnsureFirewallPolicy(testCtx("pop"), design.FirewallSpec{
		Name: "cp-protect", Direction: "in",
		Rules: []design.FirewallRuleSpec{
			{Action: "permit", Protocol: "tcp", SrcPrefix: "2401:db00::/32", DstPort: 179},
			{Action: "deny", Protocol: "any"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AttachFirewall(testCtx("pop"), "cp-protect", res.Devices); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy(res.Devices, deploy.Options{
		Phases: []deploy.Phase{{Name: "canary", Percent: 50}, {Name: "rest"}},
	}, "test"); err != nil {
		t.Fatal(err)
	}
	return r, res.Devices
}

// TestGenerateAndDeployTrace: one site change through GenerateAndDeploy
// with the reconciler enabled produces a single trace holding the
// generate span, per-phase deploy spans with per-device commits, and
// the reconcile span, correctly nested with non-zero durations.
func TestGenerateAndDeployTrace(t *testing.T) {
	r, devices := newTracedPOP(t)

	var roots []telemetry.SpanSnapshot
	for _, s := range r.Tracer.Recent() {
		if s.Name == "generate-and-deploy" {
			roots = append(roots, s)
		}
	}
	if len(roots) != 1 {
		t.Fatalf("generate-and-deploy traces = %d, want exactly 1", len(roots))
	}
	root := roots[0]
	if root.TraceID == "" || root.DurationNS <= 0 {
		t.Fatalf("root trace_id=%q duration=%d", root.TraceID, root.DurationNS)
	}

	// Top-level nesting: generate, verify, deploy, reconcile — in
	// pipeline order (the verification gate sits between generation and
	// deployment).
	var order []string
	for _, c := range root.Children {
		order = append(order, c.Name)
	}
	if got := strings.Join(order, ","); got != "generate,verify,deploy,reconcile" {
		t.Fatalf("root children = %s, want generate,verify,deploy,reconcile", got)
	}

	gen := root.Children[0]
	if gen.DurationNS <= 0 {
		t.Errorf("generate span duration = %d", gen.DurationNS)
	}
	if got := len(gen.FindAll("generate-device")); got != len(devices) {
		t.Errorf("generate-device spans = %d, want %d", got, len(devices))
	}
	for _, d := range gen.Children {
		if d.Attrs["device"] == "" || d.Attrs["memo"] == "" {
			t.Errorf("generate-device span missing device/memo attrs: %+v", d.Attrs)
		}
	}

	dep := root.Children[2]
	if dep.DurationNS <= 0 {
		t.Errorf("deploy span duration = %d", dep.DurationNS)
	}
	phases := dep.FindAll("phase")
	if len(phases) != 2 {
		t.Fatalf("phase spans = %d, want 2", len(phases))
	}
	commits := 0
	for _, p := range phases {
		if p.DurationNS <= 0 {
			t.Errorf("phase %q duration = %d", p.Attrs["phase"], p.DurationNS)
		}
		if p.Attrs["result"] != "ok" {
			t.Errorf("phase %q result = %q", p.Attrs["phase"], p.Attrs["result"])
		}
		// Commit spans nest under their phase, not the deploy span.
		for _, c := range p.Children {
			if c.Name != "commit" {
				t.Errorf("phase child %q, want commit", c.Name)
				continue
			}
			if c.Attrs["device"] == "" {
				t.Errorf("commit span missing device attr")
			}
			commits++
		}
	}
	if commits != len(devices) {
		t.Errorf("commit spans = %d, want %d", commits, len(devices))
	}

	rec := root.Children[3]
	verifies := rec.FindAll("verify-device")
	if len(verifies) != len(devices) {
		t.Fatalf("verify-device spans = %d, want %d", len(verifies), len(devices))
	}
	for _, v := range verifies {
		if v.Attrs["result"] != "conforming" {
			t.Errorf("verify-device %s result = %q, want conforming", v.Attrs["device"], v.Attrs["result"])
		}
	}
	// Every span in the tree shares the root's request ID.
	var walk func(s telemetry.SpanSnapshot)
	walk = func(s telemetry.SpanSnapshot) {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s trace_id = %q, want %q", s.Name, s.TraceID, root.TraceID)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(root)
}

// promLine matches one sample in the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

// TestMetricsEndpointScrape: the HTTP endpoint serves a parseable
// Prometheus scrape containing the pipeline's key families, a healthy
// /healthz, and the completed trace on /traces.
func TestMetricsEndpointScrape(t *testing.T) {
	r, devices := newTracedPOP(t)
	srv, err := r.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	scrape := string(body)
	for _, line := range strings.Split(strings.TrimRight(scrape, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable scrape line %q", line)
		}
	}
	for _, want := range []string{
		"robotron_generate_device_seconds_bucket{le=",
		"robotron_generate_derive_hits_total",
		"robotron_generate_derives_total",
		`robotron_deploy_commits_total{result="ok"}`,
		`robotron_deploy_commits_total{result="failed"}`,
		`robotron_reconcile_devices{state="converged"}`,
		"robotron_reconcile_breaker_open 0",
		"robotron_monitor_checks_total",
		`robotron_fbnet_queries_planned_total{strategy="indexed"}`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The two-phase deployment committed every device exactly once.
	ok := r.Telemetry.Counter("robotron_deploy_commits_total",
		telemetry.Label{Key: "result", Value: "ok"})
	if got := ok.Value(); got != int64(len(devices)) {
		t.Errorf("deploy ok commits = %d, want %d", got, len(devices))
	}

	resp, err = http.Get("http://" + srv.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK     bool `json:"ok"`
		Checks []telemetry.HealthStatus
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || !health.OK || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status=%d ok=%v err=%v", resp.StatusCode, health.OK, err)
	}

	resp, err = http.Get("http://" + srv.Addr + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces []telemetry.SpanSnapshot
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range traces {
		if tr.Name == "generate-and-deploy" {
			found = true
			if _, ok := tr.Find("reconcile"); !ok {
				t.Error("/traces generate-and-deploy trace lacks reconcile span")
			}
		}
	}
	if !found {
		t.Error("/traces missing the generate-and-deploy trace")
	}
}
