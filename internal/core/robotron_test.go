package core

import (
	"strings"
	"testing"
	"time"

	"github.com/robotron-net/robotron/internal/audit"
	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
	"github.com/robotron-net/robotron/internal/monitor"
)

func testCtx(domain string) design.ChangeContext {
	return design.ChangeContext{
		EmployeeID: "e1", TicketID: "T-1", Description: "test",
		Domain: domain, NowUnix: 1_700_000_000,
	}
}

func newRobotron(t testing.TB) *Robotron {
	t.Helper()
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// provisionPOP runs the full life cycle for a 4-post POP and installs
// monitoring.
func provisionPOP(t testing.TB, r *Robotron) ProvisionResult {
	t.Helper()
	if _, err := r.Designer.EnsureSite("pop1", "pop", "apac"); err != nil {
		t.Fatal(err)
	}
	res, err := r.ProvisionCluster(testCtx("pop"), "pop1", "pop1-c1", design.POPGen1())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstallStandardMonitoring(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFullLifeCycle drives design → generation → deployment → monitoring
// → audit end to end and expects a clean network.
func TestFullLifeCycle(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	if len(res.Devices) != 6 {
		t.Fatalf("devices = %v", res.Devices)
	}
	// The simulated network converged: all links up, BGP established.
	for _, name := range res.Devices {
		d, _ := r.Fleet.Device(name)
		ifaces, err := d.ShowInterfaces()
		if err != nil {
			t.Fatal(err)
		}
		for _, ifc := range ifaces {
			if strings.HasPrefix(ifc.Name, "et") && ifc.OperStatus != "up" {
				t.Errorf("%s %s is %s after provisioning", name, ifc.Name, ifc.OperStatus)
			}
		}
		peers, _ := d.ShowBGPSummary()
		if len(peers) == 0 {
			t.Errorf("%s has no BGP peers", name)
		}
		for _, p := range peers {
			if p.State != "Established" {
				t.Errorf("%s peer %s is %s", name, p.PeerAddr, p.State)
			}
		}
	}
	// One monitoring cycle populates Derived models; the audit is clean.
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	if n, _ := r.Store.Count("DerivedDevice"); n != 6 {
		t.Errorf("DerivedDevice = %d", n)
	}
	if n, _ := r.Store.Count("DerivedCircuit"); n != 16 {
		t.Errorf("DerivedCircuit = %d, want 16", n)
	}
	rep, err := r.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("fresh network has anomalies: %v", rep.Anomalies[:min(5, len(rep.Anomalies))])
	}
}

// TestFiberCutDetectedByAudit cuts a cable and expects the audit to flag
// the missing circuit and down interfaces.
func TestFiberCutDetectedByAudit(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	_ = res
	// Cut one circuit's fiber.
	circuits, _ := r.Store.Find("Circuit", fbnet.Eq("status", "production"))
	if len(circuits) == 0 {
		t.Fatal("no circuits")
	}
	aDev, aIf, _, err := r.circuitEnd(circuits[0], "a_interface")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Fleet.Uncable(aDev, aIf) {
		t.Fatal("uncable failed")
	}
	if err := r.CollectOnce(); err != nil {
		t.Fatal(err)
	}
	rep, _ := r.Audit()
	byKind := rep.ByKind()
	if byKind[audit.CircuitMissing] != 1 {
		t.Errorf("circuit-missing = %d, want 1 (%v)", byKind[audit.CircuitMissing], byKind)
	}
	if byKind[audit.InterfaceDown] != 2 {
		t.Errorf("interface-down = %d, want 2", byKind[audit.InterfaceDown])
	}
}

// TestDriftDetectionAndRestore covers the §8 automation-fallback story:
// manual change → config monitoring alert → restore to golden.
func TestDriftDetectionAndRestore(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	victim := res.Devices[0]
	d, _ := r.Fleet.Device(victim)
	if err := d.ApplyManualChange("username backdoor secret"); err != nil {
		t.Fatal(err)
	}
	// The syslog-triggered check already fired through the classifier.
	devs := r.ConfigMon.Deviations()
	if len(devs) != 1 || devs[0].Device != victim {
		t.Fatalf("deviations = %+v", devs)
	}
	if !strings.Contains(devs[0].Diff, "+ username backdoor secret") {
		t.Errorf("diff = %q", devs[0].Diff)
	}
	// Restore golden.
	if err := r.ConfigMon.Restore(victim, d); err != nil {
		t.Fatal(err)
	}
	cfg, _ := d.RunningConfig()
	if strings.Contains(cfg, "backdoor") {
		t.Error("manual change survived restore")
	}
	obj, err := r.Store.FindOne("DerivedConfig", fbnet.Eq("device_name", victim))
	if err != nil {
		t.Fatal(err)
	}
	if !obj.Bool("conforms") {
		t.Error("conformance not restored")
	}
}

// TestIncrementalUpdateFlow exercises GenerateAndDeploy after a design
// change: growing a bundle regenerates both ends' configs.
func TestIncrementalUpdateFlow(t *testing.T) {
	r := newRobotron(t)
	r.Designer.EnsureSite("bb-site", "backbone", "nam")
	if _, err := r.Designer.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site", "Backbone_Vendor2", "bb"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AddBackboneRouter(testCtx("backbone"), "bb2", "bb-site", "Backbone_Vendor2", "bb"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	// Bring the routers up with their initial configs.
	rep, err := r.GenerateAndDeploy([]string{"bb1", "bb2"}, deploy.Options{}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Fatalf("failures: %+v", rep.Failed())
	}
	baselineCfg, _ := func() (string, error) {
		d, _ := r.Fleet.Device("bb1")
		return d.RunningConfig()
	}()
	// Design change: grow the bundle; regenerate and deploy atomically.
	if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	rep, err = r.GenerateAndDeploy([]string{"bb1", "bb2"}, deploy.Options{Atomic: true}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := r.Fleet.Device("bb1")
	cfg, _ := d.RunningConfig()
	if cfg == baselineCfg {
		t.Error("config unchanged after bundle growth")
	}
	// Golden was updated.
	golden, err := r.Generator.Golden("bb1")
	if err != nil || golden != cfg {
		t.Errorf("golden not updated: %v", err)
	}
}

// TestStaleConfigScenario reproduces the §8 "Stale Configs" incident
// shape: a config generated before a later design change is deployed and
// config monitoring flags the device as deviating from (current) golden
// intent... here we assert the deployment-then-regeneration mismatch is
// at least visible via dryrun.
func TestStaleConfigScenario(t *testing.T) {
	r := newRobotron(t)
	r.Designer.EnsureSite("bb-site", "backbone", "nam")
	r.Designer.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site", "Backbone_Vendor2", "bb")
	r.Designer.AddBackboneRouter(testCtx("backbone"), "bb2", "bb-site", "Backbone_Vendor2", "bb")
	r.SyncFleet()
	if _, err := r.GenerateAndDeploy([]string{"bb1", "bb2"}, deploy.Options{}, "engineerA"); err != nil {
		t.Fatal(err)
	}
	// Engineer A generates a config...
	stale, err := r.Generator.GenerateDevice("bb1")
	if err != nil {
		t.Fatal(err)
	}
	// ...then engineer B lands a design change (a third mesh member).
	if _, err := r.Designer.AddBackboneRouter(testCtx("backbone"), "bb3", "bb-site", "Backbone_Vendor2", "bb"); err != nil {
		t.Fatal(err)
	}
	fresh, err := r.Generator.GenerateDevice("bb1")
	if err != nil {
		t.Fatal(err)
	}
	if stale == fresh {
		t.Fatal("design change did not affect bb1's config (mesh dependency broken)")
	}
	// Engineer A, unaware, pushes the stale config a week later. It
	// commits cleanly — the device can't know it's stale.
	d, _ := r.Fleet.Device("bb1")
	if err := d.LoadConfig(stale); err != nil {
		t.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	// But config monitoring compares against golden built from *current*
	// intent and flags the deviation — the §8 mitigation.
	if _, err := r.Generator.CommitGolden("bb1", fresh, "robotron", "regenerated from current design"); err != nil {
		t.Fatal(err)
	}
	dev, err := r.ConfigMon.CheckDevice("bb1")
	if err != nil {
		t.Fatal(err)
	}
	if dev == nil {
		t.Fatal("stale config not detected by config monitoring")
	}
	if !strings.Contains(dev.Diff, "neighbor") {
		t.Errorf("deviation diff should show the missing mesh neighbor:\n%s", dev.Diff)
	}
}

// TestPhasedDeploymentWithHealthGates runs a POP-wide phased change with a
// metric gate.
func TestPhasedDeploymentWithHealthGates(t *testing.T) {
	r := newRobotron(t)
	res := provisionPOP(t, r)
	// Template change: bump MTU comment via template edit, then phase the
	// rollout 25% -> 100% by role.
	body, _ := r.Repo.GetHead("templates/vendor1/device.tmpl")
	body = strings.Replace(body, "logging host", "service sequence-numbers\nlogging host", 1)
	if _, err := r.Repo.Commit("templates/vendor1/device.tmpl", body, "e1", "add sequence numbers"); err != nil {
		t.Fatal(err)
	}
	var phases []string
	rep, err := r.GenerateAndDeploy(res.Devices, deploy.Options{
		Phases: []deploy.Phase{
			{Name: "canary", Percent: 50, Role: "pr"},
			{Name: "rest"},
		},
		Notify: func(format string, args ...any) { phases = append(phases, format) },
	}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed()) != 0 {
		t.Errorf("failures: %+v", rep.Failed())
	}
	// Vendor1 devices now carry the new line; vendor2 untouched content-wise.
	d, _ := r.Fleet.Device(res.Devices[0])
	for _, name := range res.Devices {
		dd, _ := r.Fleet.Device(name)
		cfg, _ := dd.RunningConfig()
		if dd.Vendor() == "vendor1" && !strings.Contains(cfg, "service sequence-numbers") {
			t.Errorf("%s missing template change", name)
		}
	}
	_ = d
}

// TestMonitoringPipelineRealTime runs the periodic job manager briefly.
func TestMonitoringPipelineRealTime(t *testing.T) {
	r := newRobotron(t)
	provisionPOP(t, r)
	// Re-install jobs with tiny periods for the real-time path.
	jm := monitor.NewJobManager(monitor.FleetDeviceResolver(r.Fleet))
	jm.RegisterBackend(monitor.NewTimeseriesBackend())
	jm.AddJob(monitor.JobSpec{Name: "fast", Period: 5 * time.Millisecond,
		Engine: monitor.EngineSNMP, Data: monitor.DataCounters,
		Devices: monitor.SortedDeviceNames(r.Fleet), Backends: []string{"timeseries"}})
	jm.Start()
	deadline := time.Now().Add(2 * time.Second)
	for jm.Stats().Counts()[monitor.EngineSNMP] < 12 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	jm.Stop()
	if jm.Stats().Counts()[monitor.EngineSNMP] < 12 {
		t.Errorf("snmp events = %d", jm.Stats().Counts()[monitor.EngineSNMP])
	}
}

// TestSyncFleetDetectsMiscabling: if the physical world contradicts the
// design, SyncFleet refuses.
func TestSyncFleetDetectsMiscabling(t *testing.T) {
	r := newRobotron(t)
	r.Designer.EnsureSite("bb-site", "backbone", "nam")
	r.Designer.AddBackboneRouter(testCtx("backbone"), "bb1", "bb-site", "Backbone_Vendor2", "bb")
	r.Designer.AddBackboneRouter(testCtx("backbone"), "bb2", "bb-site", "Backbone_Vendor2", "bb")
	r.Designer.AddBackboneRouter(testCtx("backbone"), "bb3", "bb-site", "Backbone_Vendor2", "bb")
	if _, err := r.Designer.AddBackboneCircuit(testCtx("backbone"), "bb1", "bb2", 1); err != nil {
		t.Fatal(err)
	}
	// A tech cables bb1's port to bb3 instead.
	cir, _ := r.Store.FindOne("Circuit", nil)
	aDev, aIf, _, _ := r.circuitEnd(cir, "a_interface")
	// Pre-create the devices so we can miswire before SyncFleet.
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	r.Fleet.Uncable(aDev, aIf)
	if err := r.Fleet.Wire(aDev, aIf, "bb3", "et-1/0/9"); err != nil {
		t.Fatal(err)
	}
	err := r.SyncFleet()
	if err == nil || !strings.Contains(err.Error(), "cabled to") {
		t.Errorf("miscabling not detected: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
