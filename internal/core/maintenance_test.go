package core

import (
	"errors"
	"testing"

	"github.com/robotron-net/robotron/internal/deploy"
	"github.com/robotron-net/robotron/internal/design"
	"github.com/robotron-net/robotron/internal/fbnet"
)

// TestMaintenanceWithDrainProcedure follows the paper's §1 example:
// migrating a circuit between routers involves drain and undrain
// procedures around the configuration changes.
func TestMaintenanceWithDrainProcedure(t *testing.T) {
	r := newRobotron(t)
	ctx := testCtx("backbone")
	r.Designer.EnsureSite("bb-site", "backbone", "nam")
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		if _, err := r.Designer.AddBackboneRouter(ctx, n, "bb-site", "Backbone_Vendor2", "bb"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Designer.AddBackboneCircuit(ctx, "bb1", "bb2", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SyncFleet(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GenerateAndDeploy([]string{"bb1", "bb2", "bb3"}, deploy.Options{}, "e1"); err != nil {
		t.Fatal(err)
	}
	// Routers go into service.
	for _, n := range []string{"bb1", "bb2", "bb3"} {
		if err := r.UndrainDevice(ctx, n); err != nil {
			t.Fatal(err)
		}
	}
	d2, _ := r.Fleet.Device("bb2")
	if d2.TrafficLoad() == 0 {
		t.Fatal("undrained device carries no traffic")
	}

	// Maintenance: initial provisioning of bb2 is refused while it
	// carries traffic.
	cfg, err := r.Generator.GenerateDevice("bb2")
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Deployer.InitialProvision(map[string]string{"bb2": cfg}, deploy.Options{})
	if !errors.Is(err, deploy.ErrDrainRequired) {
		t.Fatalf("undrained provisioning: want ErrDrainRequired, got %v", err)
	}

	// Drain first (recorded in FBNet, traffic moved off), then the same
	// operation succeeds.
	if err := r.DrainDevice(ctx, "bb2"); err != nil {
		t.Fatal(err)
	}
	obj, _ := r.Store.FindOne("Device", fbnet.Eq("name", "bb2"))
	if obj.String("drain_state") != "drained" {
		t.Error("drain not recorded in FBNet")
	}
	if _, err := r.Deployer.InitialProvision(map[string]string{"bb2": cfg}, deploy.Options{}); err != nil {
		t.Fatal(err)
	}
	// Migrate the circuit while bb2 is drained, redeploy, undrain.
	cir, err := r.Store.FindOne("Circuit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Designer.MigrateCircuit(ctx, cir.String("circuit_id"), "bb3"); err != nil {
		t.Fatal(err)
	}
	// The physical plant still runs the old cable: a plain sync refuses
	// (miscabling detection), the recabling work order reconciles it.
	if err := r.SyncFleet(); err == nil {
		t.Fatal("sync should detect the stale cable after migration")
	}
	moved, err := r.ApplyRecabling()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Error("recabling moved no cables")
	}
	if _, err := r.GenerateAndDeploy([]string{"bb1", "bb2", "bb3"}, deploy.Options{Atomic: true}, "e1"); err != nil {
		t.Fatal(err)
	}
	if err := r.UndrainDevice(ctx, "bb2"); err != nil {
		t.Fatal(err)
	}
	violations, err := design.ValidateDesign(r.Store)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("violations after maintenance: %v", violations)
	}
}
