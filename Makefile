GO ?= go

.PHONY: tier1 build vet test race bench

# Tier-1 gate: what CI and reviewers run before merging.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-evaluation and system benchmarks (Figures 12-16, Tables 2-3,
# materialization, provisioning, parallel deployment).
bench:
	$(GO) test -bench=. -benchmem .
