GO ?= go

.PHONY: tier1 build vet test race verify-gate chaos sim obs bench bench-generate bench-reconcile bench-telemetry bench-scale

# Tier-1 gate: what CI and reviewers run before merging.
tier1: verify-gate sim obs
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# Pre-deploy intent verification gate: the invariant checker's mutation
# tests (flip an ASN, leak a subnet, orphan a circuit, partition a
# switch) plus the end-to-end rejection contract in core, under the race
# detector. See DESIGN.md §12.
verify-gate:
	$(GO) test -race -v -timeout 5m ./internal/verify/
	$(GO) test -race -timeout 5m -run 'TestVerifyGate' ./internal/core/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos suite: the fleet-scale fault-injection soak (64 devices, 4 fault
# kinds on a fixed seed, convergence-or-quarantine acceptance) plus the
# /metrics scrape check, under the race detector. See DESIGN.md §11.
# The same acceptance criteria also exist declaratively as
# examples/scenarios/ambiguous-commit-chaos.yaml (run by `make sim`).
chaos:
	$(GO) test -race -v -timeout 10m ./internal/chaos/

# Scenario harness: static-validate and execute every example scenario
# under the race detector (the engine tests double-run each for
# byte-identical journals), then the same through the CLI entry point.
# See DESIGN.md §14 and README "Writing scenarios".
sim:
	$(GO) test -race -timeout 10m ./internal/scenario/
	$(GO) run -race ./cmd/robotron sim validate examples/scenarios/*.yaml
	$(GO) run -race ./cmd/robotron sim run examples/scenarios/*.yaml

# Intent-derived observability: the alarm engine, job/rule derivation,
# and correlation tests under the race detector, the HTTP/CLI parity
# contract in core, then the end-to-end drill — drift cuts psw1's
# addresses, the derived bgp-session-down alarm fires correlated with the
# causing config-changed event, and resolves after reconciliation. See
# DESIGN.md §15 and README "Operational timeline".
obs:
	$(GO) test -race -timeout 5m \
		-run 'Alarm|Derive|ReplaceJobs|Timeseries|Timeline|Correlation|Classifier' \
		./internal/monitor/
	$(GO) test -race -timeout 5m -run 'TestObs|TestAlarms' ./internal/core/
	$(GO) run -race ./cmd/robotron sim run examples/scenarios/bgp-down-alarm-correlated.yaml

# Paper-evaluation and system benchmarks (Figures 12-16, Tables 2-3,
# materialization, provisioning, parallel deployment), plus the
# generation-pipeline benchmarks captured to BENCH_generate.json.
bench: bench-generate bench-reconcile bench-telemetry bench-scale
	$(GO) test -bench=. -benchmem .

# Generation + deployment pipeline benchmarks (serial vs parallel vs
# memoized site generation, planner indexed-vs-scan, deploy engine),
# captured as a go-test JSON event stream for trend tracking.
bench-generate:
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkGenerateSite|BenchmarkGenerateDevice|BenchmarkPlanner' \
		./internal/configgen/ ./internal/fbnet/ > BENCH_generate.json
	$(GO) test -json -run '^$$' -benchmem -bench . ./internal/deploy/ >> BENCH_generate.json
	@grep -h '"Output".*ns/op' BENCH_generate.json | sed 's/.*"Output":"//;s/\\n"}//;s/\\t/\t/g'

# Reconciliation-loop benchmark: time-to-convergence when the whole
# fleet drifts at once, vs fleet size (8/64/256), captured as a go-test
# JSON event stream for trend tracking, then the storm sizes
# (256/4096/16384) in single-domain vs 64-site sharded mode —
# ROBOTRON_BENCH_LARGE=1 unlocks the 16384 rows.
bench-reconcile:
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkReconcileConverge' \
		./internal/reconcile/ > BENCH_reconcile.json
	ROBOTRON_BENCH_LARGE=1 $(GO) test -json -run '^$$' -benchmem -timeout 30m \
		-bench 'BenchmarkScaleReconcileConverge' \
		./internal/reconcile/ >> BENCH_reconcile.json
	@grep -h '"Output".*ns/op' BENCH_reconcile.json | sed 's/.*"Output":"//;s/\\n"}//;s/\\t/\t/g'

# Telemetry benchmarks: registry primitives (counter/histogram/span,
# Prometheus export) and the end-to-end overhead of instrumented vs
# detached generation, captured as a go-test JSON event stream.
bench-telemetry:
	$(GO) test -json -run '^$$' -benchmem -bench . ./internal/telemetry/ > BENCH_telemetry.json
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkTelemetryOverhead' \
		./internal/configgen/ >> BENCH_telemetry.json
	$(GO) test -json -run '^$$' -benchmem \
		-bench 'BenchmarkAlarmEvaluate' \
		./internal/monitor/ >> BENCH_telemetry.json
	@grep -h '"Output".*ns/op' BENCH_telemetry.json | sed 's/.*"Output":"//;s/\\n"}//;s/\\t/\t/g'

# Hot-path scale benchmarks (DESIGN.md §13): incremental fleet recompute,
# lock-free relstore epoch reads, zero-alloc template rendering, and the
# reconcile loop, at fleet/table sizes 256/4096/16384 plus a 100k-device
# recompute microbench. ROBOTRON_BENCH_LARGE=1 unlocks the 16384 and 100k
# sizes, which the per-package default runs skip.
bench-scale:
	ROBOTRON_BENCH_LARGE=1 $(GO) test -json -run '^$$' -benchmem -timeout 30m \
		-bench 'BenchmarkScale' \
		./internal/netsim/ ./internal/relstore/ ./internal/configgen/ ./internal/reconcile/ > BENCH_scale.json
	@grep -h '"Output".*ns/op' BENCH_scale.json | sed 's/.*"Output":"//;s/\\n"}//;s/\\t/\t/g'
