module github.com/robotron-net/robotron

go 1.22
